//! Designed (non-random) topologies.
//!
//! Includes the specially designed 24-switch network of Figure 4 — four
//! interconnected rings of six switches — along with classic regular
//! topologies used by the extended evaluation and the test-suite.

use crate::graph::{SwitchId, Topology, TopologyBuilder};

/// A designed-topology shape was invalid (e.g. a 2-switch ring). Carries
/// the human-readable reason so parsers can surface it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError(pub String);

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ShapeError {}

fn shape(ok: bool, reason: &str) -> Result<(), ShapeError> {
    if ok {
        Ok(())
    } else {
        Err(ShapeError(reason.to_string()))
    }
}

/// A ring of `n` switches.
///
/// # Errors
/// [`ShapeError`] if `n < 3`.
pub fn try_ring(n: usize, hosts_per_switch: usize) -> Result<Topology, ShapeError> {
    shape(n >= 3, "ring needs at least 3 switches")?;
    Ok(TopologyBuilder::new(n, hosts_per_switch)
        .links((0..n).map(|i| (i, (i + 1) % n)))
        .build()
        .expect("ring is always valid"))
}

/// A ring of `n` switches (`n >= 3`).
///
/// # Panics
/// Panics if `n < 3`; use [`try_ring`] to validate instead.
pub fn ring(n: usize, hosts_per_switch: usize) -> Topology {
    try_ring(n, hosts_per_switch).unwrap_or_else(|e| panic!("{e}"))
}

/// A line (path) of `n` switches.
///
/// # Errors
/// [`ShapeError`] if `n < 2`.
pub fn try_line(n: usize, hosts_per_switch: usize) -> Result<Topology, ShapeError> {
    shape(n >= 2, "line needs at least 2 switches")?;
    Ok(TopologyBuilder::new(n, hosts_per_switch)
        .links((0..n - 1).map(|i| (i, i + 1)))
        .build()
        .expect("line is always valid"))
}

/// A line (path) of `n` switches (`n >= 2`).
///
/// # Panics
/// Panics if `n < 2`; use [`try_line`] to validate instead.
pub fn line(n: usize, hosts_per_switch: usize) -> Topology {
    try_line(n, hosts_per_switch).unwrap_or_else(|e| panic!("{e}"))
}

/// A star: switch 0 in the centre, switches `1..n` as leaves.
///
/// # Errors
/// [`ShapeError`] if `n < 2`.
pub fn try_star(n: usize, hosts_per_switch: usize) -> Result<Topology, ShapeError> {
    shape(n >= 2, "star needs at least 2 switches")?;
    Ok(TopologyBuilder::new(n, hosts_per_switch)
        .links((1..n).map(|i| (0, i)))
        .build()
        .expect("star is always valid"))
}

/// A star: switch 0 in the centre, switches `1..n` as leaves (`n >= 2`).
///
/// # Panics
/// Panics if `n < 2`; use [`try_star`] to validate instead.
pub fn star(n: usize, hosts_per_switch: usize) -> Topology {
    try_star(n, hosts_per_switch).unwrap_or_else(|e| panic!("{e}"))
}

/// The complete graph on `n` switches.
///
/// # Errors
/// [`ShapeError`] if `n < 2`.
pub fn try_complete(n: usize, hosts_per_switch: usize) -> Result<Topology, ShapeError> {
    shape(n >= 2, "complete graph needs at least 2 switches")?;
    let mut b = TopologyBuilder::new(n, hosts_per_switch);
    for i in 0..n {
        for j in (i + 1)..n {
            b = b.link(i, j);
        }
    }
    Ok(b.build().expect("complete graph is always valid"))
}

/// The complete graph on `n` switches (`n >= 2`).
///
/// # Panics
/// Panics if `n < 2`; use [`try_complete`] to validate instead.
pub fn complete(n: usize, hosts_per_switch: usize) -> Topology {
    try_complete(n, hosts_per_switch).unwrap_or_else(|e| panic!("{e}"))
}

/// A `w × h` 2-D mesh. Switch `(x, y)` has index `y * w + x`.
///
/// # Errors
/// [`ShapeError`] if `w < 2` or `h < 2`.
pub fn try_mesh(w: usize, h: usize, hosts_per_switch: usize) -> Result<Topology, ShapeError> {
    shape(w >= 2 && h >= 2, "mesh needs both dimensions >= 2")?;
    let mut b = TopologyBuilder::new(w * h, hosts_per_switch);
    for y in 0..h {
        for x in 0..w {
            let s = y * w + x;
            if x + 1 < w {
                b = b.link(s, s + 1);
            }
            if y + 1 < h {
                b = b.link(s, s + w);
            }
        }
    }
    Ok(b.build().expect("mesh is always valid"))
}

/// A `w × h` 2-D mesh (`w, h >= 2`). Switch `(x, y)` has index `y * w + x`.
///
/// # Panics
/// Panics if `w < 2` or `h < 2`; use [`try_mesh`] to validate instead.
pub fn mesh(w: usize, h: usize, hosts_per_switch: usize) -> Topology {
    try_mesh(w, h, hosts_per_switch).unwrap_or_else(|e| panic!("{e}"))
}

/// A `w × h` 2-D torus (`w, h >= 3` so wrap links are distinct).
///
/// # Errors
/// [`ShapeError`] if `w < 3` or `h < 3`.
pub fn try_torus(w: usize, h: usize, hosts_per_switch: usize) -> Result<Topology, ShapeError> {
    shape(w >= 3 && h >= 3, "torus needs both dimensions >= 3")?;
    let mut b = TopologyBuilder::new(w * h, hosts_per_switch);
    for y in 0..h {
        for x in 0..w {
            let s = y * w + x;
            b = b.link(s, y * w + (x + 1) % w);
            b = b.link(s, ((y + 1) % h) * w + x);
        }
    }
    Ok(b.build().expect("torus is always valid"))
}

/// A `w × h` 2-D torus (`w, h >= 3`).
///
/// # Panics
/// Panics if `w < 3` or `h < 3`; use [`try_torus`] to validate instead.
pub fn torus(w: usize, h: usize, hosts_per_switch: usize) -> Topology {
    try_torus(w, h, hosts_per_switch).unwrap_or_else(|e| panic!("{e}"))
}

/// A hypercube of dimension `dim`.
///
/// # Errors
/// [`ShapeError`] if `dim` is 0 or greater than 16.
pub fn try_hypercube(dim: u32, hosts_per_switch: usize) -> Result<Topology, ShapeError> {
    shape((1..=16).contains(&dim), "hypercube dimension out of range")?;
    let n = 1usize << dim;
    let mut b = TopologyBuilder::new(n, hosts_per_switch);
    for s in 0..n {
        for d in 0..dim {
            let t = s ^ (1 << d);
            if s < t {
                b = b.link(s, t);
            }
        }
    }
    Ok(b.build().expect("hypercube is always valid"))
}

/// A hypercube of dimension `dim` (`1 <= dim <= 16`).
///
/// # Panics
/// Panics if `dim` is 0 or greater than 16; use [`try_hypercube`] to
/// validate instead.
pub fn hypercube(dim: u32, hosts_per_switch: usize) -> Topology {
    try_hypercube(dim, hosts_per_switch).unwrap_or_else(|e| panic!("{e}"))
}

/// The Figure-4 network: `rings` interconnected rings of `ring_size`
/// switches each. Ring `r` occupies switches `r*ring_size ..
/// (r+1)*ring_size`; consecutive rings (cyclically) are joined by a single
/// bridge link, giving well-defined physical clusters with scarce
/// inter-cluster bandwidth.
///
/// With the defaults (`rings = 4`, `ring_size = 6`) this is the paper's
/// specially designed 24-switch network.
///
/// # Errors
/// [`ShapeError`] if `rings < 2` or `ring_size < 3`.
pub fn try_ring_of_rings(
    rings: usize,
    ring_size: usize,
    hosts_per_switch: usize,
) -> Result<Topology, ShapeError> {
    shape(rings >= 2, "need at least two rings")?;
    shape(ring_size >= 3, "each ring needs at least 3 switches")?;
    let mut b = TopologyBuilder::new(rings * ring_size, hosts_per_switch);
    for r in 0..rings {
        let base = r * ring_size;
        for i in 0..ring_size {
            b = b.link(base + i, base + (i + 1) % ring_size);
        }
    }
    // One bridge between consecutive rings. Stagger the bridge endpoints so
    // no switch carries two bridges (keeps the inter-switch degree <= 4 and
    // the clusters symmetric).
    for r in 0..rings {
        let next = (r + 1) % rings;
        let from = r * ring_size; // first switch of ring r
        let to = next * ring_size + ring_size / 2; // opposite side of next ring
        if rings == 2 && r == 1 {
            // Avoid a duplicate bridge in the two-ring case; add a second
            // distinct bridge for redundancy instead.
            let from2 = ring_size - 1;
            let to2 = ring_size + ring_size - 1;
            b = b.link(from2, to2);
        } else {
            b = b.link(from, to);
        }
    }
    Ok(b.build().expect("ring-of-rings is always valid"))
}

/// See [`try_ring_of_rings`].
///
/// # Panics
/// Panics if `rings < 2` or `ring_size < 3`; use [`try_ring_of_rings`]
/// to validate instead.
pub fn ring_of_rings(rings: usize, ring_size: usize, hosts_per_switch: usize) -> Topology {
    try_ring_of_rings(rings, ring_size, hosts_per_switch).unwrap_or_else(|e| panic!("{e}"))
}

/// The paper's specially designed 24-switch network (Figure 4): four
/// interconnected rings of six switches, four hosts per switch.
pub fn paper_24_switch() -> Topology {
    ring_of_rings(4, 6, 4)
}

/// Ground-truth clusters for [`ring_of_rings`]: switch `s` belongs to ring
/// `s / ring_size`.
pub fn ring_of_rings_clusters(rings: usize, ring_size: usize) -> Vec<Vec<SwitchId>> {
    (0..rings)
        .map(|r| (r * ring_size..(r + 1) * ring_size).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let t = ring(6, 4);
        assert_eq!(t.num_links(), 6);
        assert!((0..6).all(|s| t.degree(s) == 2));
        assert_eq!(t.diameter(), Some(3));
    }

    #[test]
    fn line_structure() {
        let t = line(5, 1);
        assert_eq!(t.num_links(), 4);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(2), 2);
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn star_structure() {
        let t = star(5, 1);
        assert_eq!(t.degree(0), 4);
        assert!((1..5).all(|s| t.degree(s) == 1));
        assert_eq!(t.diameter(), Some(2));
    }

    #[test]
    fn complete_structure() {
        let t = complete(5, 1);
        assert_eq!(t.num_links(), 10);
        assert_eq!(t.diameter(), Some(1));
    }

    #[test]
    fn mesh_structure() {
        let t = mesh(3, 3, 1);
        assert_eq!(t.num_switches(), 9);
        assert_eq!(t.num_links(), 12);
        assert_eq!(t.degree(4), 4); // centre
        assert_eq!(t.degree(0), 2); // corner
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn torus_structure() {
        let t = torus(4, 4, 1);
        assert_eq!(t.num_switches(), 16);
        assert_eq!(t.num_links(), 32);
        assert!((0..16).all(|s| t.degree(s) == 4));
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn hypercube_structure() {
        let t = hypercube(4, 1);
        assert_eq!(t.num_switches(), 16);
        assert_eq!(t.num_links(), 32);
        assert!((0..16).all(|s| t.degree(s) == 4));
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn paper_24_switch_structure() {
        let t = paper_24_switch();
        assert_eq!(t.num_switches(), 24);
        assert_eq!(t.num_hosts(), 96);
        // 4 rings x 6 links + 4 bridges.
        assert_eq!(t.num_links(), 28);
        assert!(t.is_connected());
        // Every switch fits in the paper's 4 inter-switch ports.
        assert!((0..24).all(|s| t.degree(s) <= 4));
        // Ring members have degree 2 or 3 (bridge endpoints have 3).
        let bridges = (0..24).filter(|&s| t.degree(s) == 3).count();
        assert_eq!(bridges, 8); // 4 bridges x 2 endpoints
    }

    #[test]
    fn ring_of_rings_two_rings() {
        let t = ring_of_rings(2, 4, 1);
        assert!(t.is_connected());
        // 2 rings x 4 links + 2 bridges.
        assert_eq!(t.num_links(), 10);
    }

    #[test]
    fn invalid_shapes_are_errors_not_panics() {
        assert_eq!(
            try_ring(2, 1).unwrap_err().to_string(),
            "ring needs at least 3 switches"
        );
        assert!(try_line(1, 1).is_err());
        assert!(try_star(1, 1).is_err());
        assert!(try_complete(1, 1).is_err());
        assert!(try_mesh(1, 5, 1).is_err());
        assert!(try_torus(2, 3, 1).is_err());
        assert!(try_hypercube(0, 1).is_err());
        assert!(try_hypercube(17, 1).is_err());
        assert!(try_ring_of_rings(1, 6, 1).is_err());
        assert!(try_ring_of_rings(4, 2, 1).is_err());
        // Valid shapes still build through the fallible path.
        assert_eq!(try_ring(3, 1).unwrap().num_links(), 3);
    }

    #[test]
    #[should_panic(expected = "ring needs at least 3")]
    fn panicking_wrapper_keeps_message() {
        let _ = ring(2, 1);
    }

    #[test]
    fn ground_truth_clusters() {
        let c = ring_of_rings_clusters(4, 6);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c[3], vec![18, 19, 20, 21, 22, 23]);
    }

    #[test]
    fn intra_ring_distances_beat_inter_ring() {
        let t = paper_24_switch();
        // Max distance within a ring of 6 is 3; crossing rings costs more on
        // average because bridges are scarce.
        let d0 = t.bfs_distances(1);
        let intra_max = (0..6).map(|s| d0[s]).max().unwrap();
        let inter_min_avg: f64 = (6..12).map(|s| f64::from(d0[s])).sum::<f64>() / 6.0;
        assert!(intra_max <= 3);
        assert!(inter_min_avg > f64::from(intra_max));
    }
}
