//! The switch-graph data structure and its construction/validation.

use std::collections::VecDeque;

/// Index of a switch (network node) in a [`Topology`].
pub type SwitchId = usize;

/// Index of an undirected link in a [`Topology`].
pub type LinkId = usize;

/// An undirected link between two switches. Stored with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Lower endpoint.
    pub a: SwitchId,
    /// Upper endpoint.
    pub b: SwitchId,
}

impl Link {
    /// Normalized constructor (orders the endpoints).
    ///
    /// # Panics
    /// Panics on a self-loop; the builder reports self-loops as errors
    /// before constructing `Link`s.
    pub fn new(u: SwitchId, v: SwitchId) -> Self {
        assert_ne!(u, v, "self-loop link");
        if u < v {
            Self { a: u, b: v }
        } else {
            Self { a: v, b: u }
        }
    }

    /// The endpoint opposite to `s`; `None` if `s` is not an endpoint.
    pub fn other(&self, s: SwitchId) -> Option<SwitchId> {
        if s == self.a {
            Some(self.b)
        } else if s == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Errors raised while building a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link endpoint referenced a switch index `>= num_switches`.
    SwitchOutOfRange {
        /// The offending switch index.
        switch: SwitchId,
        /// Number of switches declared.
        num_switches: usize,
    },
    /// A link connected a switch to itself.
    SelfLoop(SwitchId),
    /// The same pair of switches was linked more than once (the paper
    /// assumes a single link between neighbouring switches).
    DuplicateLink(SwitchId, SwitchId),
    /// A switch exceeded the configured maximum inter-switch degree.
    DegreeExceeded {
        /// The offending switch.
        switch: SwitchId,
        /// Its resulting degree.
        degree: usize,
        /// The configured maximum.
        max_degree: usize,
    },
    /// The graph is not connected and connectivity was required.
    Disconnected,
    /// The topology has no switches.
    Empty,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::SwitchOutOfRange {
                switch,
                num_switches,
            } => {
                write!(f, "switch {switch} out of range (n = {num_switches})")
            }
            TopologyError::SelfLoop(s) => write!(f, "self-loop at switch {s}"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "duplicate link between switches {a} and {b}")
            }
            TopologyError::DegreeExceeded {
                switch,
                degree,
                max_degree,
            } => write!(
                f,
                "switch {switch} has degree {degree} > maximum {max_degree}"
            ),
            TopologyError::Disconnected => write!(f, "topology is not connected"),
            TopologyError::Empty => write!(f, "topology has no switches"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Builder for [`Topology`] with validation.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    num_switches: usize,
    hosts_per_switch: usize,
    max_degree: Option<usize>,
    require_connected: bool,
    links: Vec<Link>,
    slowdowns: Vec<u32>,
    uniform_mem: Option<u64>,
    mem_caps: Vec<(SwitchId, u64)>,
}

impl TopologyBuilder {
    /// Start a builder for `num_switches` switches, each hosting
    /// `hosts_per_switch` workstations.
    pub fn new(num_switches: usize, hosts_per_switch: usize) -> Self {
        Self {
            num_switches,
            hosts_per_switch,
            max_degree: None,
            require_connected: true,
            links: Vec::new(),
            slowdowns: Vec::new(),
            uniform_mem: None,
            mem_caps: Vec::new(),
        }
    }

    /// Give every switch the same memory capacity in bytes (jobs placed on
    /// a switch charge their per-task memory demand against it). Without
    /// any capacity call the topology is *uncapacitated*: admission treats
    /// every switch as unlimited and the fingerprint is unchanged from
    /// earlier releases.
    pub fn uniform_mem_capacity(mut self, bytes: u64) -> Self {
        self.uniform_mem = Some(bytes);
        self
    }

    /// Set the memory capacity of one switch in bytes, overriding any
    /// uniform capacity. Switches never mentioned (and not covered by a
    /// uniform capacity) default to unlimited (`u64::MAX`).
    pub fn mem_capacity(mut self, s: SwitchId, bytes: u64) -> Self {
        self.mem_caps.push((s, bytes));
        self
    }

    /// Limit the inter-switch degree of every switch (e.g. 4 for the
    /// paper's 8-port switches with 4 host ports).
    pub fn max_degree(mut self, d: usize) -> Self {
        self.max_degree = Some(d);
        self
    }

    /// Allow building a disconnected topology (used by tests; the library
    /// otherwise insists on connectivity, as the paper's networks are
    /// connected by construction).
    pub fn allow_disconnected(mut self) -> Self {
        self.require_connected = false;
        self
    }

    /// Add an undirected full-speed link between `u` and `v`.
    pub fn link(self, u: SwitchId, v: SwitchId) -> Self {
        self.link_with_slowdown(u, v, 1)
    }

    /// Add a link that transfers one flit every `slowdown` cycles
    /// (`slowdown = 1` is full speed; e.g. 10 models Fast Ethernet next to
    /// Gigabit). The equivalent-distance model charges the link a
    /// resistance of `slowdown`. A zero slowdown is rejected at build.
    pub fn link_with_slowdown(mut self, u: SwitchId, v: SwitchId, slowdown: u32) -> Self {
        // Defer validation (including self-loop detection) to `build` so the
        // builder chain stays infallible.
        self.links.push(if u == v {
            // Represent invalid self-loops verbatim; `Link::new` would panic.
            Link { a: u, b: v }
        } else {
            Link::new(u, v)
        });
        self.slowdowns.push(slowdown);
        self
    }

    /// Add many links.
    pub fn links<I: IntoIterator<Item = (SwitchId, SwitchId)>>(mut self, it: I) -> Self {
        for (u, v) in it {
            self = self.link(u, v);
        }
        self
    }

    /// Validate and build the topology.
    ///
    /// # Errors
    /// See [`TopologyError`].
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.num_switches == 0 {
            return Err(TopologyError::Empty);
        }
        let n = self.num_switches;
        let mut adj: Vec<Vec<(SwitchId, LinkId)>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for (id, l) in self.links.iter().enumerate() {
            if l.a >= n {
                return Err(TopologyError::SwitchOutOfRange {
                    switch: l.a,
                    num_switches: n,
                });
            }
            if l.b >= n {
                return Err(TopologyError::SwitchOutOfRange {
                    switch: l.b,
                    num_switches: n,
                });
            }
            if l.a == l.b {
                return Err(TopologyError::SelfLoop(l.a));
            }
            if !seen.insert((l.a, l.b)) {
                return Err(TopologyError::DuplicateLink(l.a, l.b));
            }
            adj[l.a].push((l.b, id));
            adj[l.b].push((l.a, id));
        }
        if let Some(max_d) = self.max_degree {
            for (s, nb) in adj.iter().enumerate() {
                if nb.len() > max_d {
                    return Err(TopologyError::DegreeExceeded {
                        switch: s,
                        degree: nb.len(),
                        max_degree: max_d,
                    });
                }
            }
        }
        if let Some(bad) = self.slowdowns.iter().position(|&x| x == 0) {
            // Reuse the out-of-range error shape for a zero slowdown: the
            // offending link id is reported in the switch field.
            return Err(TopologyError::SwitchOutOfRange {
                switch: bad,
                num_switches: 0,
            });
        }
        for nb in &mut adj {
            nb.sort_unstable();
        }
        let mem_capacities = if self.uniform_mem.is_some() || !self.mem_caps.is_empty() {
            let mut caps = vec![self.uniform_mem.unwrap_or(u64::MAX); n];
            for &(s, bytes) in &self.mem_caps {
                if s >= n {
                    return Err(TopologyError::SwitchOutOfRange {
                        switch: s,
                        num_switches: n,
                    });
                }
                caps[s] = bytes;
            }
            caps
        } else {
            Vec::new()
        };
        let topo = Topology {
            hosts_per_switch: self.hosts_per_switch,
            links: self.links,
            slowdowns: self.slowdowns,
            adj,
            mem_capacities,
        };
        if self.require_connected && !topo.is_connected() {
            return Err(TopologyError::Disconnected);
        }
        Ok(topo)
    }
}

/// An undirected graph of switches with attached hosts.
///
/// Immutable once built; all the downstream machinery (routing tables,
/// distance tables, the simulator) borrows it.
#[derive(Debug, Clone)]
pub struct Topology {
    hosts_per_switch: usize,
    links: Vec<Link>,
    /// Per-link slowdown factor (1 = full speed; k = one flit every k
    /// cycles, resistance k in the distance model).
    slowdowns: Vec<u32>,
    /// Sorted adjacency: for each switch, `(neighbour, link id)` pairs.
    adj: Vec<Vec<(SwitchId, LinkId)>>,
    /// Per-switch memory capacity in bytes. Empty when the topology is
    /// uncapacitated (every switch unlimited); otherwise `len == n` with
    /// `u64::MAX` marking individually-unlimited switches.
    mem_capacities: Vec<u64>,
}

impl Topology {
    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of workstations attached to each switch.
    pub fn hosts_per_switch(&self) -> usize {
        self.hosts_per_switch
    }

    /// Total number of workstations in the system.
    pub fn num_hosts(&self) -> usize {
        self.num_switches() * self.hosts_per_switch
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with a given id.
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id]
    }

    /// Slowdown factor of a link (1 = full speed).
    pub fn link_slowdown(&self, id: LinkId) -> u32 {
        self.slowdowns[id]
    }

    /// Whether every link runs at full speed (the paper's setting).
    pub fn is_link_homogeneous(&self) -> bool {
        self.slowdowns.iter().all(|&s| s == 1)
    }

    /// Whether any switch carries an explicit memory capacity. An
    /// uncapacitated topology admits any memory demand.
    pub fn has_mem_capacities(&self) -> bool {
        !self.mem_capacities.is_empty()
    }

    /// Memory capacity of switch `s` in bytes; `None` when the topology
    /// is uncapacitated (unlimited everywhere). `u64::MAX` marks a switch
    /// that is individually unlimited in an otherwise capacitated network.
    pub fn mem_capacity(&self, s: SwitchId) -> Option<u64> {
        self.mem_capacities.get(s).copied()
    }

    /// The full per-switch capacity vector, `None` when uncapacitated.
    pub fn mem_capacities(&self) -> Option<&[u64]> {
        if self.mem_capacities.is_empty() {
            None
        } else {
            Some(&self.mem_capacities)
        }
    }

    /// Neighbours of `s` with the connecting link ids, sorted by neighbour.
    pub fn neighbors(&self, s: SwitchId) -> &[(SwitchId, LinkId)] {
        &self.adj[s]
    }

    /// Inter-switch degree of `s`.
    pub fn degree(&self, s: SwitchId) -> usize {
        self.adj[s].len()
    }

    /// The link id between `u` and `v`, if they are neighbours.
    pub fn link_between(&self, u: SwitchId, v: SwitchId) -> Option<LinkId> {
        self.adj[u]
            .binary_search_by_key(&v, |&(nb, _)| nb)
            .ok()
            .map(|i| self.adj[u][i].1)
    }

    /// Whether `u` and `v` are directly linked.
    pub fn has_link(&self, u: SwitchId, v: SwitchId) -> bool {
        self.link_between(u, v).is_some()
    }

    /// BFS hop distances from `src` to every switch; unreachable switches
    /// get `u32::MAX`.
    pub fn bfs_distances(&self, src: SwitchId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_switches()];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &(v, _) in &self.adj[u] {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether the switch graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.num_switches() == 0 {
            return false;
        }
        self.bfs_distances(0).iter().all(|&d| d != u32::MAX)
    }

    /// Topological diameter (maximum hop distance between any pair);
    /// `None` if disconnected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for s in 0..self.num_switches() {
            let d = self.bfs_distances(s);
            let m = *d.iter().max()?;
            if m == u32::MAX {
                return None;
            }
            best = best.max(m);
        }
        Some(best)
    }

    /// Average hop distance over ordered pairs of distinct switches;
    /// `None` if disconnected or fewer than two switches.
    pub fn average_distance(&self) -> Option<f64> {
        let n = self.num_switches();
        if n < 2 {
            return None;
        }
        let mut sum = 0u64;
        for s in 0..n {
            for (t, &d) in self.bfs_distances(s).iter().enumerate() {
                if t != s {
                    if d == u32::MAX {
                        return None;
                    }
                    sum += u64::from(d);
                }
            }
        }
        Some(sum as f64 / (n * (n - 1)) as f64)
    }

    /// Connected components, each a sorted list of switches.
    pub fn components(&self) -> Vec<Vec<SwitchId>> {
        let n = self.num_switches();
        let mut comp = vec![usize::MAX; n];
        let mut out: Vec<Vec<SwitchId>> = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = out.len();
            let mut members = vec![start];
            comp[start] = c;
            let mut q = VecDeque::from([start]);
            while let Some(u) = q.pop_front() {
                for &(v, _) in &self.adj[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = c;
                        members.push(v);
                        q.push_back(v);
                    }
                }
            }
            members.sort_unstable();
            out.push(members);
        }
        out
    }

    /// Number of links crossing a bipartition `(set, complement)`, where
    /// `in_set[s]` says whether switch `s` is in the set. Used by the
    /// evaluation to report cut sizes of partitions.
    pub fn cut_size(&self, in_set: &[bool]) -> usize {
        self.links
            .iter()
            .filter(|l| in_set[l.a] != in_set[l.b])
            .count()
    }

    /// A stable 64-bit content hash of the topology: switch count, hosts
    /// per switch, and the multiset of `(a, b, slowdown)` link triples.
    ///
    /// Two topologies that describe the same network — regardless of the
    /// order links were added in — fingerprint identically; changing a
    /// link, a slowdown, or either count changes the fingerprint (with
    /// the usual 64-bit collision caveat). The hash is a fixed FNV-1a
    /// over a canonical byte encoding, so it is reproducible across
    /// processes, platforms, and releases, making it usable as a
    /// persistent registry/cache key.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.num_switches() as u64);
        eat(self.hosts_per_switch as u64);
        // Canonical link order: links are stored with a < b, so sorting
        // the triples erases insertion order.
        let mut triples: Vec<(SwitchId, SwitchId, u32)> = self
            .links
            .iter()
            .zip(&self.slowdowns)
            .map(|(l, &s)| (l.a, l.b, s))
            .collect();
        triples.sort_unstable();
        for (a, b, s) in triples {
            eat(a as u64);
            eat(b as u64);
            eat(u64::from(s));
        }
        // Memory capacities are hashed only when present so that every
        // uncapacitated topology keeps the fingerprint it had before
        // capacities existed (registry/WAL keys stay stable).
        if !self.mem_capacities.is_empty() {
            eat(0x6d65_6d63_6170); // "memcap" domain separator
            for &c in &self.mem_capacities {
                eat(c);
            }
        }
        h
    }

    /// The topology with link `failed` removed — the degraded network
    /// after a cable failure. Link ids of the surviving links are
    /// renumbered compactly (they refer to the new topology).
    ///
    /// # Errors
    /// [`TopologyError::Disconnected`] if removing the link partitions
    /// the network; [`TopologyError::SwitchOutOfRange`] (with the link id
    /// in the switch field) if `failed` does not exist.
    pub fn without_link(&self, failed: LinkId) -> Result<Topology, TopologyError> {
        if failed >= self.links.len() {
            return Err(TopologyError::SwitchOutOfRange {
                switch: failed,
                num_switches: self.links.len(),
            });
        }
        let mut b = TopologyBuilder::new(self.num_switches(), self.hosts_per_switch);
        for (id, l) in self.links.iter().enumerate() {
            if id != failed {
                b = b.link_with_slowdown(l.a, l.b, self.slowdowns[id]);
            }
        }
        for (s, &c) in self.mem_capacities.iter().enumerate() {
            b = b.mem_capacity(s, c);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        TopologyBuilder::new(3, 4)
            .links([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    #[test]
    fn link_normalizes_order() {
        let l = Link::new(5, 2);
        assert_eq!((l.a, l.b), (2, 5));
        assert_eq!(l.other(2), Some(5));
        assert_eq!(l.other(5), Some(2));
        assert_eq!(l.other(7), None);
    }

    #[test]
    fn builds_triangle() {
        let t = triangle();
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.num_hosts(), 12);
        assert!(t.has_link(0, 1));
        assert!(t.has_link(1, 0));
        assert_eq!(t.degree(1), 2);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(1));
    }

    #[test]
    fn rejects_self_loop() {
        let err = TopologyBuilder::new(2, 1).link(1, 1).build().unwrap_err();
        assert_eq!(err, TopologyError::SelfLoop(1));
    }

    #[test]
    fn rejects_duplicate_even_reversed() {
        let err = TopologyBuilder::new(2, 1)
            .link(0, 1)
            .link(1, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::DuplicateLink(0, 1));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = TopologyBuilder::new(2, 1).link(0, 2).build().unwrap_err();
        assert!(matches!(
            err,
            TopologyError::SwitchOutOfRange { switch: 2, .. }
        ));
    }

    #[test]
    fn rejects_excess_degree() {
        let err = TopologyBuilder::new(4, 1)
            .max_degree(2)
            .links([(0, 1), (0, 2), (0, 3), (1, 2)])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            TopologyError::DegreeExceeded {
                switch: 0,
                degree: 3,
                max_degree: 2
            }
        ));
    }

    #[test]
    fn rejects_disconnected_by_default() {
        let err = TopologyBuilder::new(4, 1)
            .links([(0, 1), (2, 3)])
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::Disconnected);
    }

    #[test]
    fn allows_disconnected_when_asked() {
        let t = TopologyBuilder::new(4, 1)
            .links([(0, 1), (2, 3)])
            .allow_disconnected()
            .build()
            .unwrap();
        assert!(!t.is_connected());
        assert_eq!(t.components(), vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(t.diameter(), None);
        assert_eq!(t.average_distance(), None);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            TopologyBuilder::new(0, 1).build().unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn bfs_distances_on_path() {
        let t = TopologyBuilder::new(4, 1)
            .links([(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(t.bfs_distances(0), vec![0, 1, 2, 3]);
        assert_eq!(t.diameter(), Some(3));
        // Ordered-pair average of path P4: (1+2+3)*2 + (1+2)*2 + ... =
        // distances: d01=1,d02=2,d03=3,d12=1,d13=2,d23=1 => sum*2 = 20, /12.
        assert!((t.average_distance().unwrap() - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn link_between_lookup() {
        let t = triangle();
        let id = t.link_between(2, 0).unwrap();
        assert_eq!(t.link(id), Link::new(0, 2));
        assert_eq!(t.link_between(0, 0), None);
    }

    #[test]
    fn cut_size_counts_crossing_links() {
        let t = triangle();
        assert_eq!(t.cut_size(&[true, false, false]), 2);
        assert_eq!(t.cut_size(&[true, true, true]), 0);
    }

    #[test]
    fn without_link_removes_exactly_one() {
        let t = triangle();
        let id = t.link_between(0, 1).unwrap();
        let degraded = t.without_link(id).unwrap();
        assert_eq!(degraded.num_links(), 2);
        assert!(!degraded.has_link(0, 1));
        assert!(degraded.has_link(1, 2));
        assert!(degraded.is_connected());
    }

    #[test]
    fn without_link_detects_partition() {
        let t = TopologyBuilder::new(3, 1)
            .links([(0, 1), (1, 2)])
            .build()
            .unwrap();
        let id = t.link_between(1, 2).unwrap();
        assert_eq!(t.without_link(id).unwrap_err(), TopologyError::Disconnected);
    }

    #[test]
    fn without_link_rejects_bad_id() {
        let t = triangle();
        assert!(t.without_link(99).is_err());
    }

    #[test]
    fn fingerprint_ignores_link_insertion_order() {
        let a = TopologyBuilder::new(3, 4)
            .links([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        let b = TopologyBuilder::new(3, 4)
            .links([(2, 0), (0, 1), (1, 2)])
            .build()
            .unwrap();
        // Reversed endpoints normalize too.
        let c = TopologyBuilder::new(3, 4)
            .links([(1, 0), (2, 1), (0, 2)])
            .build()
            .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_is_sensitive_to_content() {
        let base = triangle();
        let different_link = TopologyBuilder::new(3, 4)
            .links([(0, 1), (1, 2)])
            .build()
            .unwrap();
        let different_slowdown = TopologyBuilder::new(3, 4)
            .link(0, 1)
            .link_with_slowdown(1, 2, 10)
            .link(2, 0)
            .build()
            .unwrap();
        let different_hosts = TopologyBuilder::new(3, 2)
            .links([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap();
        assert_ne!(base.fingerprint(), different_link.fingerprint());
        assert_ne!(base.fingerprint(), different_slowdown.fingerprint());
        assert_ne!(base.fingerprint(), different_hosts.fingerprint());
    }

    #[test]
    fn mem_capacities_default_to_unlimited() {
        let t = triangle();
        assert!(!t.has_mem_capacities());
        assert_eq!(t.mem_capacity(0), None);
        assert_eq!(t.mem_capacities(), None);
    }

    #[test]
    fn uniform_and_per_switch_capacities() {
        let t = TopologyBuilder::new(3, 4)
            .links([(0, 1), (1, 2), (2, 0)])
            .uniform_mem_capacity(1024)
            .mem_capacity(1, 64)
            .build()
            .unwrap();
        assert!(t.has_mem_capacities());
        assert_eq!(t.mem_capacity(0), Some(1024));
        assert_eq!(t.mem_capacity(1), Some(64));
        assert_eq!(t.mem_capacity(2), Some(1024));
        assert_eq!(t.mem_capacities(), Some(&[1024, 64, 1024][..]));
    }

    #[test]
    fn mem_capacity_rejects_out_of_range_switch() {
        let err = TopologyBuilder::new(2, 1)
            .link(0, 1)
            .mem_capacity(5, 100)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            TopologyError::SwitchOutOfRange { switch: 5, .. }
        ));
    }

    #[test]
    fn capacities_change_fingerprint_only_when_set() {
        let plain = triangle();
        let capped = TopologyBuilder::new(3, 4)
            .links([(0, 1), (1, 2), (2, 0)])
            .uniform_mem_capacity(1024)
            .build()
            .unwrap();
        let capped_other = TopologyBuilder::new(3, 4)
            .links([(0, 1), (1, 2), (2, 0)])
            .uniform_mem_capacity(2048)
            .build()
            .unwrap();
        assert_ne!(plain.fingerprint(), capped.fingerprint());
        assert_ne!(capped.fingerprint(), capped_other.fingerprint());
        // Uncapacitated fingerprints are byte-compatible with pre-capacity
        // builds: building the same network twice still agrees.
        assert_eq!(plain.fingerprint(), triangle().fingerprint());
    }

    #[test]
    fn without_link_preserves_capacities() {
        let t = TopologyBuilder::new(3, 4)
            .links([(0, 1), (1, 2), (2, 0)])
            .uniform_mem_capacity(512)
            .mem_capacity(2, 8)
            .build()
            .unwrap();
        let id = t.link_between(0, 1).unwrap();
        let degraded = t.without_link(id).unwrap();
        assert_eq!(degraded.mem_capacities(), Some(&[512, 512, 8][..]));
    }

    #[test]
    fn fingerprint_is_stable_across_builds() {
        // The same network built twice (and cloned) hashes identically —
        // the value is a pure function of content.
        assert_eq!(triangle().fingerprint(), triangle().fingerprint());
        let t = triangle();
        assert_eq!(t.fingerprint(), t.clone().fingerprint());
    }
}
