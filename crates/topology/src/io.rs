//! Plain-text serialization of topologies.
//!
//! A tiny line-oriented format, stable across versions, so networks can be
//! stored, diffed, and exchanged with other tools:
//!
//! ```text
//! # commsched topology v1
//! switches 16
//! hosts_per_switch 4
//! link 0 1
//! link 0 7
//! ...
//! ```
//!
//! Comments (`#`) and blank lines are ignored when parsing.

use crate::graph::{Topology, TopologyBuilder, TopologyError};
use std::fmt::Write as _;

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not match any known directive.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A directive had a malformed or missing argument.
    BadArgument {
        /// 1-based line number.
        line: usize,
        /// The directive name.
        directive: &'static str,
    },
    /// The `switches` directive is missing.
    MissingHeader,
    /// A directive appeared twice.
    DuplicateDirective(&'static str),
    /// Structural validation failed.
    Invalid(TopologyError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: unrecognized '{content}'")
            }
            ParseError::BadArgument { line, directive } => {
                write!(f, "line {line}: bad argument for '{directive}'")
            }
            ParseError::MissingHeader => write!(f, "missing 'switches' directive"),
            ParseError::DuplicateDirective(d) => write!(f, "duplicate '{d}' directive"),
            ParseError::Invalid(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a topology to the text format.
pub fn to_text(topo: &Topology) -> String {
    let mut out = String::new();
    writeln!(out, "# commsched topology v1").expect("write to string");
    writeln!(out, "switches {}", topo.num_switches()).expect("write to string");
    writeln!(out, "hosts_per_switch {}", topo.hosts_per_switch()).expect("write to string");
    for (id, l) in topo.links().iter().enumerate() {
        let slowdown = topo.link_slowdown(id);
        if slowdown == 1 {
            writeln!(out, "link {} {}", l.a, l.b).expect("write to string");
        } else {
            writeln!(out, "link {} {} {slowdown}", l.a, l.b).expect("write to string");
        }
    }
    if let Some(caps) = topo.mem_capacities() {
        if let Some(&first) = caps.first() {
            if caps.iter().all(|&c| c == first) {
                writeln!(out, "mem_per_switch {first}").expect("write to string");
            } else {
                for (s, &c) in caps.iter().enumerate() {
                    writeln!(out, "mem {s} {c}").expect("write to string");
                }
            }
        }
    }
    out
}

/// Parse the text format.
///
/// # Errors
/// See [`ParseError`].
pub fn from_text(text: &str) -> Result<Topology, ParseError> {
    let mut switches: Option<usize> = None;
    let mut hosts: usize = 0;
    let mut hosts_seen = false;
    let mut links: Vec<(usize, usize, u32)> = Vec::new();
    let mut uniform_mem: Option<u64> = None;
    let mut mem_caps: Vec<(usize, u64)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.trim();
        if content.is_empty() || content.starts_with('#') {
            continue;
        }
        let mut parts = content.split_whitespace();
        match parts.next() {
            Some("switches") => {
                if switches.is_some() {
                    return Err(ParseError::DuplicateDirective("switches"));
                }
                let n =
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(ParseError::BadArgument {
                            line,
                            directive: "switches",
                        })?;
                switches = Some(n);
            }
            Some("hosts_per_switch") => {
                if hosts_seen {
                    return Err(ParseError::DuplicateDirective("hosts_per_switch"));
                }
                hosts =
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(ParseError::BadArgument {
                            line,
                            directive: "hosts_per_switch",
                        })?;
                hosts_seen = true;
            }
            Some("link") => {
                let a = parts.next().and_then(|v| v.parse().ok());
                let b = parts.next().and_then(|v| v.parse().ok());
                let slowdown = match parts.next() {
                    None => Some(1u32),
                    Some(v) => v.parse().ok(),
                };
                match (a, b, slowdown) {
                    (Some(a), Some(b), Some(s)) => links.push((a, b, s)),
                    _ => {
                        return Err(ParseError::BadArgument {
                            line,
                            directive: "link",
                        })
                    }
                }
            }
            Some("mem_per_switch") => {
                if uniform_mem.is_some() {
                    return Err(ParseError::DuplicateDirective("mem_per_switch"));
                }
                let bytes =
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(ParseError::BadArgument {
                            line,
                            directive: "mem_per_switch",
                        })?;
                uniform_mem = Some(bytes);
            }
            Some("mem") => {
                let s = parts.next().and_then(|v| v.parse().ok());
                let bytes = parts.next().and_then(|v| v.parse().ok());
                match (s, bytes) {
                    (Some(s), Some(bytes)) => mem_caps.push((s, bytes)),
                    _ => {
                        return Err(ParseError::BadArgument {
                            line,
                            directive: "mem",
                        })
                    }
                }
            }
            _ => {
                return Err(ParseError::BadLine {
                    line,
                    content: content.to_string(),
                })
            }
        }
        // Reject trailing junk on directive lines.
        if parts.next().is_some() {
            return Err(ParseError::BadLine {
                line,
                content: content.to_string(),
            });
        }
    }

    let n = switches.ok_or(ParseError::MissingHeader)?;
    let mut b = TopologyBuilder::new(n, hosts);
    for (u, v, slowdown) in links {
        b = b.link_with_slowdown(u, v, slowdown);
    }
    if let Some(bytes) = uniform_mem {
        b = b.uniform_mem_capacity(bytes);
    }
    for (s, bytes) in mem_caps {
        b = b.mem_capacity(s, bytes);
    }
    b.build().map_err(ParseError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designed;

    #[test]
    fn round_trip_preserves_structure() {
        for topo in [
            designed::ring(6, 4),
            designed::paper_24_switch(),
            designed::mesh(3, 4, 2),
        ] {
            let text = to_text(&topo);
            let back = from_text(&text).unwrap();
            assert_eq!(back.num_switches(), topo.num_switches());
            assert_eq!(back.hosts_per_switch(), topo.hosts_per_switch());
            assert_eq!(back.links(), topo.links());
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text =
            "\n# hello\nswitches 3\n\nhosts_per_switch 1\nlink 0 1\n# mid\nlink 1 2\nlink 2 0\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.num_links(), 3);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            from_text("hosts_per_switch 1\n").unwrap_err(),
            ParseError::MissingHeader
        );
    }

    #[test]
    fn bad_lines_rejected() {
        assert!(matches!(
            from_text("switches 2\nfrobnicate 1\n").unwrap_err(),
            ParseError::BadLine { line: 2, .. }
        ));
        assert!(matches!(
            from_text("switches two\n").unwrap_err(),
            ParseError::BadArgument {
                directive: "switches",
                ..
            }
        ));
        assert!(matches!(
            from_text("switches 2\nlink 0\n").unwrap_err(),
            ParseError::BadArgument {
                directive: "link",
                ..
            }
        ));
        // A third link field is the slowdown; a FOURTH is junk.
        assert!(matches!(
            from_text("switches 2\nlink 0 1 9 9\n").unwrap_err(),
            ParseError::BadLine { .. }
        ));
        assert!(matches!(
            from_text("switches 2\nlink 0 1 fast\n").unwrap_err(),
            ParseError::BadArgument {
                directive: "link",
                ..
            }
        ));
    }

    #[test]
    fn duplicates_rejected() {
        assert_eq!(
            from_text("switches 2\nswitches 3\n").unwrap_err(),
            ParseError::DuplicateDirective("switches")
        );
        assert_eq!(
            from_text("switches 2\nhosts_per_switch 1\nhosts_per_switch 2\n").unwrap_err(),
            ParseError::DuplicateDirective("hosts_per_switch")
        );
    }

    #[test]
    fn slowdowns_round_trip() {
        let t = TopologyBuilder::new(3, 2)
            .link(0, 1)
            .link_with_slowdown(1, 2, 10)
            .link_with_slowdown(0, 2, 4)
            .build()
            .unwrap();
        let text = to_text(&t);
        assert!(text.contains("link 1 2 10"));
        let back = from_text(&text).unwrap();
        for id in 0..3 {
            assert_eq!(back.link_slowdown(id), t.link_slowdown(id));
        }
    }

    #[test]
    fn mem_capacities_round_trip() {
        // Uniform capacity serializes as a single directive.
        let uniform = TopologyBuilder::new(3, 1)
            .links([(0, 1), (1, 2)])
            .uniform_mem_capacity(4096)
            .build()
            .unwrap();
        let text = to_text(&uniform);
        assert!(text.contains("mem_per_switch 4096"));
        let back = from_text(&text).unwrap();
        assert_eq!(back.mem_capacities(), uniform.mem_capacities());
        assert_eq!(back.fingerprint(), uniform.fingerprint());

        // Heterogeneous capacities serialize per switch.
        let hetero = TopologyBuilder::new(3, 1)
            .links([(0, 1), (1, 2)])
            .uniform_mem_capacity(4096)
            .mem_capacity(1, 128)
            .build()
            .unwrap();
        let text = to_text(&hetero);
        assert!(text.contains("mem 1 128"));
        let back = from_text(&text).unwrap();
        assert_eq!(back.mem_capacities(), hetero.mem_capacities());
        assert_eq!(back.fingerprint(), hetero.fingerprint());

        // Uncapacitated topologies emit no mem directives at all.
        assert!(!to_text(&designed::ring(4, 1)).contains("mem"));
    }

    #[test]
    fn mem_directives_rejected_when_malformed() {
        assert!(matches!(
            from_text("switches 2\nlink 0 1\nmem_per_switch lots\n").unwrap_err(),
            ParseError::BadArgument {
                directive: "mem_per_switch",
                ..
            }
        ));
        assert!(matches!(
            from_text("switches 2\nlink 0 1\nmem 0\n").unwrap_err(),
            ParseError::BadArgument {
                directive: "mem",
                ..
            }
        ));
        // Trailing junk after a valid mem directive is rejected.
        assert!(matches!(
            from_text("switches 2\nlink 0 1\nmem 0 64 junk\n").unwrap_err(),
            ParseError::BadLine { .. }
        ));
        assert_eq!(
            from_text("switches 2\nlink 0 1\nmem_per_switch 1\nmem_per_switch 2\n").unwrap_err(),
            ParseError::DuplicateDirective("mem_per_switch")
        );
        // Out-of-range switch in a mem directive fails validation.
        assert!(matches!(
            from_text("switches 2\nhosts_per_switch 1\nlink 0 1\nmem 9 64\n").unwrap_err(),
            ParseError::Invalid(TopologyError::SwitchOutOfRange { switch: 9, .. })
        ));
    }

    #[test]
    fn structural_validation_applies() {
        // Disconnected graph is rejected by the builder.
        assert!(matches!(
            from_text("switches 4\nhosts_per_switch 1\nlink 0 1\nlink 2 3\n").unwrap_err(),
            ParseError::Invalid(TopologyError::Disconnected)
        ));
        // Self-loops too.
        assert!(matches!(
            from_text("switches 2\nhosts_per_switch 1\nlink 1 1\n").unwrap_err(),
            ParseError::Invalid(TopologyError::SelfLoop(1))
        ));
    }
}
