//! Seeded random topology generation under the paper's constraints.
//!
//! §5.1 of the paper: networks are irregular and generated randomly, but
//! (i) exactly 4 workstations per switch, (ii) a single link between two
//! neighbouring switches, (iii) all switches identical 8-port devices —
//! 4 ports to hosts and 4 to other switches, of which **3 are wired** and
//! one is left open. That makes the switch graph a random *3-regular*
//! simple connected graph.
//!
//! [`random_regular`] implements the pairing (configuration) model with
//! rejection: each switch gets `degree` stubs, stubs are shuffled and paired;
//! samples containing self-loops, duplicate links, or a disconnected graph
//! are rejected and re-drawn. For the small degrees and sizes used here the
//! acceptance rate is high.

use crate::graph::{Topology, TopologyBuilder, TopologyError};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for the random generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomTopologyConfig {
    /// Number of switches.
    pub switches: usize,
    /// Inter-switch links per switch (3 in the paper).
    pub degree: usize,
    /// Workstations per switch (4 in the paper).
    pub hosts_per_switch: usize,
    /// Rejection-sampling attempts before giving up.
    pub max_attempts: usize,
}

impl RandomTopologyConfig {
    /// The paper's configuration for `switches` switches: degree 3 and 4
    /// hosts per switch.
    pub fn paper(switches: usize) -> Self {
        Self {
            switches,
            degree: 3,
            hosts_per_switch: 4,
            max_attempts: 10_000,
        }
    }
}

/// Errors from the random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RandomTopologyError {
    /// `switches * degree` must be even for a regular graph to exist.
    OddStubCount {
        /// Requested switch count.
        switches: usize,
        /// Requested degree.
        degree: usize,
    },
    /// The degree must be below the switch count (simple graph).
    DegreeTooLarge {
        /// Requested switch count.
        switches: usize,
        /// Requested degree.
        degree: usize,
    },
    /// No valid sample was found within `max_attempts`.
    AttemptsExhausted(usize),
    /// Internal validation failure (should not happen).
    Build(TopologyError),
}

impl std::fmt::Display for RandomTopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RandomTopologyError::OddStubCount { switches, degree } => write!(
                f,
                "no {degree}-regular graph on {switches} switches: odd stub count"
            ),
            RandomTopologyError::DegreeTooLarge { switches, degree } => {
                write!(f, "degree {degree} too large for {switches} switches")
            }
            RandomTopologyError::AttemptsExhausted(n) => {
                write!(f, "rejection sampling exhausted after {n} attempts")
            }
            RandomTopologyError::Build(e) => write!(f, "builder rejected sample: {e}"),
        }
    }
}

impl std::error::Error for RandomTopologyError {}

/// Draw one random connected `degree`-regular simple topology.
///
/// Deterministic given the `rng` state, so experiments are reproducible by
/// seeding the RNG.
///
/// # Errors
/// See [`RandomTopologyError`].
pub fn random_regular<R: Rng + ?Sized>(
    cfg: RandomTopologyConfig,
    rng: &mut R,
) -> Result<Topology, RandomTopologyError> {
    let n = cfg.switches;
    let d = cfg.degree;
    if n == 0 || d >= n {
        return Err(RandomTopologyError::DegreeTooLarge {
            switches: n,
            degree: d,
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(RandomTopologyError::OddStubCount {
            switches: n,
            degree: d,
        });
    }
    let mut stubs: Vec<usize> = Vec::with_capacity(n * d);
    for _ in 0..cfg.max_attempts {
        stubs.clear();
        for s in 0..n {
            stubs.extend(std::iter::repeat_n(s, d));
        }
        stubs.shuffle(rng);
        if let Some(topo) = try_pairing(&stubs, n, cfg.hosts_per_switch, d)? {
            return Ok(topo);
        }
    }
    Err(RandomTopologyError::AttemptsExhausted(cfg.max_attempts))
}

/// Pair consecutive stubs; return `Ok(None)` when the sample must be
/// rejected (self-loop, duplicate link, or disconnected).
fn try_pairing(
    stubs: &[usize],
    n: usize,
    hosts_per_switch: usize,
    degree: usize,
) -> Result<Option<Topology>, RandomTopologyError> {
    let mut seen = std::collections::HashSet::with_capacity(stubs.len() / 2);
    let mut builder = TopologyBuilder::new(n, hosts_per_switch).max_degree(degree);
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u == v {
            return Ok(None);
        }
        let key = (u.min(v), u.max(v));
        if !seen.insert(key) {
            return Ok(None);
        }
        builder = builder.link(u, v);
    }
    match builder.build() {
        Ok(t) => Ok(Some(t)),
        Err(TopologyError::Disconnected) => Ok(None),
        Err(e) => Err(RandomTopologyError::Build(e)),
    }
}

/// Draw a random connected *irregular* topology where each switch's degree
/// is sampled uniformly from `[min_degree, max_degree]` (clamped so the stub
/// count is even). Used by the extended evaluation for "other network
/// examples".
///
/// # Errors
/// See [`RandomTopologyError`].
pub fn random_irregular<R: Rng + ?Sized>(
    switches: usize,
    min_degree: usize,
    max_degree: usize,
    hosts_per_switch: usize,
    rng: &mut R,
) -> Result<Topology, RandomTopologyError> {
    if switches == 0 || max_degree >= switches || min_degree > max_degree || min_degree == 0 {
        return Err(RandomTopologyError::DegreeTooLarge {
            switches,
            degree: max_degree,
        });
    }
    const MAX_ATTEMPTS: usize = 10_000;
    let mut stubs: Vec<usize> = Vec::new();
    for _ in 0..MAX_ATTEMPTS {
        stubs.clear();
        for s in 0..switches {
            let d = rng.gen_range(min_degree..=max_degree);
            stubs.extend(std::iter::repeat_n(s, d));
        }
        if !stubs.len().is_multiple_of(2) {
            // Add one stub to a random low-degree switch to even the count.
            let extra = rng.gen_range(0..switches);
            stubs.push(extra);
        }
        stubs.shuffle(rng);
        if let Some(topo) = try_pairing(&stubs, switches, hosts_per_switch, max_degree + 1)? {
            return Ok(topo);
        }
    }
    Err(RandomTopologyError::AttemptsExhausted(MAX_ATTEMPTS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_config_16_switches() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = random_regular(RandomTopologyConfig::paper(16), &mut rng).unwrap();
        assert_eq!(t.num_switches(), 16);
        assert_eq!(t.num_hosts(), 64);
        assert_eq!(t.num_links(), 16 * 3 / 2);
        assert!(t.is_connected());
        for s in 0..16 {
            assert_eq!(t.degree(s), 3, "switch {s} not 3-regular");
        }
    }

    #[test]
    fn paper_config_24_switches() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = random_regular(RandomTopologyConfig::paper(24), &mut rng).unwrap();
        assert_eq!(t.num_switches(), 24);
        assert!(t.is_connected());
        assert!((0..24).all(|s| t.degree(s) == 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = || {
            let mut rng = StdRng::seed_from_u64(123);
            random_regular(RandomTopologyConfig::paper(16), &mut rng).unwrap()
        };
        let (a, b) = (draw(), draw());
        assert_eq!(a.links(), b.links());
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let a = random_regular(RandomTopologyConfig::paper(16), &mut r1).unwrap();
        let b = random_regular(RandomTopologyConfig::paper(16), &mut r2).unwrap();
        assert_ne!(a.links(), b.links());
    }

    #[test]
    fn odd_stub_count_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = RandomTopologyConfig {
            switches: 5,
            degree: 3,
            hosts_per_switch: 4,
            max_attempts: 10,
        };
        assert_eq!(
            random_regular(cfg, &mut rng).unwrap_err(),
            RandomTopologyError::OddStubCount {
                switches: 5,
                degree: 3
            }
        );
    }

    #[test]
    fn degree_too_large_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = RandomTopologyConfig {
            switches: 4,
            degree: 4,
            hosts_per_switch: 4,
            max_attempts: 10,
        };
        assert!(matches!(
            random_regular(cfg, &mut rng),
            Err(RandomTopologyError::DegreeTooLarge { .. })
        ));
    }

    #[test]
    fn smallest_valid_regular() {
        // 4 switches, degree 3 => K4.
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_regular(
            RandomTopologyConfig {
                switches: 4,
                degree: 3,
                hosts_per_switch: 1,
                max_attempts: 1000,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(t.num_links(), 6);
        assert_eq!(t.diameter(), Some(1));
    }

    #[test]
    fn irregular_degrees_within_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = random_irregular(20, 2, 4, 4, &mut rng).unwrap();
        assert!(t.is_connected());
        for s in 0..20 {
            // One switch may have picked up the evening-out extra stub.
            assert!(
                t.degree(s) >= 2 && t.degree(s) <= 5,
                "degree {}",
                t.degree(s)
            );
        }
    }

    #[test]
    fn irregular_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_irregular(4, 0, 2, 1, &mut rng).is_err());
        assert!(random_irregular(4, 3, 2, 1, &mut rng).is_err());
        assert!(random_irregular(4, 2, 4, 1, &mut rng).is_err());
    }
}
