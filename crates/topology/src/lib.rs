#![warn(missing_docs)]

//! Switch-based interconnection network topologies.
//!
//! This crate models the networks the ICPP 2000 paper evaluates: irregular
//! switch-based interconnects in the style of Autonet/Myrinet NOWs. A
//! [`Topology`] is an undirected multigraph-free graph of switches; each
//! switch additionally hosts a fixed number of workstations (4 in the
//! paper's experiments — 8-port switches with 4 host ports and 4 switch
//! ports, of which 3 are wired and 1 is left open).
//!
//! Two families of constructors are provided:
//!
//! * [`random`] — seeded random irregular topologies under the paper's
//!   structural constraints (§5.1): fixed inter-switch degree, a single link
//!   between neighbouring switches, connectedness;
//! * [`designed`] — regular/designed topologies, including the
//!   four-rings-of-six network of Figure 4.
//!
//! # Example
//!
//! ```
//! use commsched_topology::designed;
//!
//! let topo = designed::ring(8, 4);
//! assert_eq!(topo.num_switches(), 8);
//! assert!(topo.is_connected());
//! assert_eq!(topo.degree(0), 2);
//! ```

pub mod designed;
pub mod graph;
pub mod io;
pub mod random;

pub use graph::{Link, LinkId, SwitchId, Topology, TopologyBuilder, TopologyError};
pub use io::{from_text, to_text};
pub use random::{random_regular, RandomTopologyConfig};
