//! Exhaustive (exact) search over partitions with fixed cluster sizes.
//!
//! The paper validates tabu search by exhaustive enumeration "for small
//! size networks (up to 16 switches)". Enumeration is over *groupings*:
//! clusters of equal size are unlabeled, so each distinct grouping is
//! visited exactly once (16 switches into 4×4 clusters = 2 627 625
//! groupings, not 16!/(4!)⁴).

use crate::{check_sizes, Mapper, SearchResult};
use commsched_core::{similarity_fg, Partition};
use commsched_distance::DistanceTable;
use rand::RngCore;

/// Visit every grouping of `n` switches into clusters of the given sizes
/// exactly once (equal-sized clusters unlabeled). The callback receives the
/// per-switch assignment; return `false` from it to stop early.
///
/// # Panics
/// Panics if `sizes` is not a valid cluster-size vector for `n`.
pub fn enumerate_partitions<F: FnMut(&[usize]) -> bool>(n: usize, sizes: &[usize], mut f: F) {
    assert!(check_sizes(n, sizes), "invalid cluster sizes");
    let mut assign = vec![usize::MAX; n];
    let mut remaining: Vec<usize> = sizes.to_vec();
    recurse(0, n, sizes, &mut remaining, &mut assign, &mut f);
}

/// Returns `false` to propagate an early stop.
fn recurse<F: FnMut(&[usize]) -> bool>(
    switch: usize,
    n: usize,
    sizes: &[usize],
    remaining: &mut [usize],
    assign: &mut [usize],
    f: &mut F,
) -> bool {
    if switch == n {
        return f(assign);
    }
    let mut tried_empty_of_size: Vec<usize> = Vec::new();
    for c in 0..sizes.len() {
        if remaining[c] == 0 {
            continue;
        }
        let is_empty = remaining[c] == sizes[c];
        if is_empty {
            // Symmetry breaking: among still-empty clusters of one size,
            // only the first may receive this switch.
            if tried_empty_of_size.contains(&sizes[c]) {
                continue;
            }
            tried_empty_of_size.push(sizes[c]);
        }
        assign[switch] = c;
        remaining[c] -= 1;
        let keep_going = recurse(switch + 1, n, sizes, remaining, assign, f);
        remaining[c] += 1;
        assign[switch] = usize::MAX;
        if !keep_going {
            return false;
        }
    }
    true
}

/// Count the groupings of `n` switches into clusters of the given sizes:
/// the multinomial coefficient divided by the permutations of equal-sized
/// clusters.
pub fn count_partitions(n: usize, sizes: &[usize]) -> u128 {
    assert!(check_sizes(n, sizes), "invalid cluster sizes");
    // n! / (Π sᵢ!) / (Π multiplicity_of_size!)
    let fact = |k: usize| -> u128 { (1..=k as u128).product::<u128>().max(1) };
    let mut value = fact(n);
    for &s in sizes {
        value /= fact(s);
    }
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        value /= fact(j - i + 1);
        i = j + 1;
    }
    value
}

/// Exact minimizer of `F_G` by full enumeration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSearch;

impl Mapper for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        _rng: &mut dyn RngCore,
    ) -> SearchResult {
        let mut best: Option<(f64, Partition)> = None;
        let mut evaluations = 0u64;
        enumerate_partitions(table.n(), sizes, |assign| {
            let p = Partition::new(assign.to_vec(), sizes.len())
                .expect("enumerated assignment is valid");
            let fg = similarity_fg(&p, table);
            evaluations += 1;
            if best.as_ref().is_none_or(|(f, _)| fg < *f) {
                best = Some((fg, p));
            }
            true
        });
        let (fg, partition) = best.expect("at least one grouping exists");
        SearchResult {
            partition,
            fg,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, dumbbell_truth};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_match_enumeration() {
        for (n, sizes) in [
            (4usize, vec![2usize, 2]),
            (6, vec![3, 3]),
            (6, vec![2, 2, 2]),
            (6, vec![4, 2]),
            (8, vec![4, 4]),
            (7, vec![3, 2, 2]),
        ] {
            let mut seen = 0u128;
            enumerate_partitions(n, &sizes, |_| {
                seen += 1;
                true
            });
            assert_eq!(seen, count_partitions(n, &sizes), "n={n} sizes={sizes:?}");
        }
    }

    #[test]
    fn known_counts() {
        // 4 into 2+2 unlabeled: 3 groupings.
        assert_eq!(count_partitions(4, &[2, 2]), 3);
        // 6 into 2+2+2: 15.
        assert_eq!(count_partitions(6, &[2, 2, 2]), 15);
        // 8 into 4+4: 35.
        assert_eq!(count_partitions(8, &[4, 4]), 35);
        // The paper's 16 into 4x4: 2,627,625.
        assert_eq!(count_partitions(16, &[4, 4, 4, 4]), 2_627_625);
    }

    #[test]
    fn no_duplicate_groupings() {
        let mut seen = std::collections::HashSet::new();
        enumerate_partitions(6, &[2, 2, 2], |assign| {
            let p = Partition::new(assign.to_vec(), 3).unwrap();
            assert!(seen.insert(p.canonical()), "duplicate grouping {assign:?}");
            true
        });
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn early_stop_respected() {
        let mut visits = 0;
        enumerate_partitions(8, &[4, 4], |_| {
            visits += 1;
            visits < 10
        });
        assert_eq!(visits, 10);
    }

    #[test]
    fn finds_dumbbell_optimum() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(0);
        let res = ExhaustiveSearch.search(&table, &[4, 4], &mut rng);
        assert!(res.partition.same_grouping(&dumbbell_truth()));
        assert_eq!(res.evaluations, 35);
    }

    #[test]
    fn unequal_sizes_enumeration() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(0);
        let res = ExhaustiveSearch.search(&table, &[6, 2], &mut rng);
        // 8 into 6+2: C(8,2) = 28 groupings.
        assert_eq!(res.evaluations, 28);
        assert_eq!(res.partition.sizes(), vec![6, 2]);
    }

    #[test]
    #[should_panic(expected = "invalid cluster sizes")]
    fn invalid_sizes_panic() {
        enumerate_partitions(4, &[3, 3], |_| true);
    }
}
