//! A minimal scoped work-stealing pool shared by the search drivers.
//!
//! All the parallelism in this crate has the same shape: `tasks`
//! independent jobs of uneven cost, results needed *in task order* so the
//! caller's merge is deterministic. [`run_indexed`] implements exactly
//! that — workers pull indices off a shared atomic counter (work
//! stealing, since seeds and individuals differ wildly in runtime) and
//! the results are returned indexed, so thread scheduling never leaks
//! into the output.

use commsched_telemetry as telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Telemetry handles for the pool, resolved once per process.
struct PoolMetrics {
    tasks: telemetry::Counter,
    queue_depth: telemetry::Gauge,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = telemetry::global();
        PoolMetrics {
            tasks: r.counter(
                "pool_tasks_total",
                "Tasks executed by the search worker pool",
            ),
            queue_depth: r.gauge(
                "pool_queue_depth",
                "Unclaimed tasks on the search pool's shared queue (last pool run)",
            ),
        }
    })
}

/// Resolve a thread-count knob: `0` means one worker per available CPU.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
}

/// Run `f(0), f(1), …, f(tasks - 1)` across `threads` scoped workers
/// (`0` = one per available CPU) and return the results in task order.
///
/// Workers claim indices from a shared atomic counter, so long tasks
/// don't stall the queue behind them. With one worker (or one task) the
/// closure runs inline on the caller's thread — no spawn, identical
/// results.
///
/// # Panics
/// Panics if a worker panics.
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).clamp(1, tasks.max(1));
    let m = pool_metrics();
    m.tasks.add(tasks as u64);
    if threads <= 1 {
        return (0..tasks).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let worker = || {
        let mut out: Vec<(usize, T)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            // Tasks are coarse (whole seed runs), so a gauge store per
            // claim is noise; concurrent pools last-write-wins.
            m.queue_depth.set(tasks.saturating_sub(i + 1) as i64);
            out.push((i, f(i)));
        }
        out
    };
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
        for h in handles {
            for (i, v) in h.join().expect("pool worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        for threads in [1, 2, 7, 64] {
            let out = run_indexed(20, threads, |i| i * i);
            let want: Vec<usize> = (0..20).map(|i| i * i).collect();
            assert_eq!(out, want, "threads = {threads}");
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn auto_thread_count_resolves() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
