//! Deterministic parallel multi-seed driver.
//!
//! The tabu search's restarts are independent, so they parallelize
//! trivially. `parallel_multi_seed` runs a mapper once per seed across a
//! thread pool and returns the best result, with a *deterministic* winner:
//! ties in `F_G` break toward the lowest seed index, so the outcome is
//! independent of thread scheduling.

use crate::{pool, Mapper, SearchResult};
use commsched_distance::DistanceTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run `mapper` once per seed `base_seed..base_seed + seeds` across
/// `threads` worker threads (the crate's work-stealing pool,
/// [`pool::run_indexed`]); return the best result and its seed.
///
/// Deterministic: the same inputs always return the same `(seed, result)`.
///
/// # Panics
/// Panics if `seeds == 0` or a worker panics.
pub fn parallel_multi_seed<M: Mapper>(
    mapper: &M,
    table: &DistanceTable,
    sizes: &[usize],
    base_seed: u64,
    seeds: usize,
    threads: usize,
) -> (u64, SearchResult) {
    assert!(seeds > 0, "need at least one seed");
    let _span = commsched_telemetry::Span::enter("search.multi_seed");
    let all = pool::run_indexed(seeds, threads.max(1), |idx| {
        let seed = base_seed + idx as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        (seed, mapper.search(table, sizes, &mut rng))
    });
    // Deterministic winner: best F_G; run_indexed returns in seed order,
    // so strict `<` breaks ties toward the lowest seed.
    all.into_iter()
        .reduce(|best, cand| if cand.1.fg < best.1.fg { cand } else { best })
        .expect("at least one seed ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabu::TabuSearch;
    use crate::testutil::{dumbbell_table, dumbbell_truth};

    #[test]
    fn parallel_matches_quality_of_serial() {
        let table = dumbbell_table();
        let mapper = TabuSearch::default();
        let (_, par) = parallel_multi_seed(&mapper, &table, &[4, 4], 100, 8, 4);
        assert!(par.partition.same_grouping(&dumbbell_truth()));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let table = dumbbell_table();
        let mapper = TabuSearch::default();
        let (s1, r1) = parallel_multi_seed(&mapper, &table, &[4, 4], 7, 6, 1);
        let (s2, r2) = parallel_multi_seed(&mapper, &table, &[4, 4], 7, 6, 4);
        let (s3, r3) = parallel_multi_seed(&mapper, &table, &[4, 4], 7, 6, 16);
        assert_eq!(s1, s2);
        assert_eq!(s2, s3);
        assert_eq!(r1.partition, r2.partition);
        assert_eq!(r2.partition, r3.partition);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_panics() {
        let table = dumbbell_table();
        let _ = parallel_multi_seed(&TabuSearch::default(), &table, &[4, 4], 0, 0, 2);
    }
}
