//! Deterministic parallel multi-seed driver.
//!
//! The tabu search's restarts are independent, so they parallelize
//! trivially. `parallel_multi_seed` runs a mapper once per seed across a
//! thread pool and returns the best result, with a *deterministic* winner:
//! ties in `F_G` break toward the lowest seed index, so the outcome is
//! independent of thread scheduling.

use crate::{Mapper, SearchResult};
use commsched_distance::DistanceTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Run `mapper` once per seed `base_seed..base_seed + seeds` across
/// `threads` worker threads; return the best result and its seed.
///
/// Deterministic: the same inputs always return the same `(seed, result)`.
///
/// # Panics
/// Panics if `seeds == 0` or a worker panics.
pub fn parallel_multi_seed<M: Mapper>(
    mapper: &M,
    table: &DistanceTable,
    sizes: &[usize],
    base_seed: u64,
    seeds: usize,
    threads: usize,
) -> (u64, SearchResult) {
    assert!(seeds > 0, "need at least one seed");
    let threads = threads.max(1).min(seeds);
    let next = Mutex::new(0usize);
    let results: Mutex<Vec<(u64, SearchResult)>> = Mutex::new(Vec::with_capacity(seeds));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = {
                    let mut guard = next.lock().expect("seed counter lock");
                    if *guard >= seeds {
                        break;
                    }
                    let i = *guard;
                    *guard += 1;
                    i
                };
                let seed = base_seed + idx as u64;
                let mut rng = StdRng::seed_from_u64(seed);
                let result = mapper.search(table, sizes, &mut rng);
                results
                    .lock()
                    .expect("result collection lock")
                    .push((seed, result));
            });
        }
    });

    let mut all = results.into_inner().expect("search worker panicked");
    // Deterministic winner: best F_G, ties to the lowest seed.
    all.sort_by(|a, b| {
        a.1.fg
            .partial_cmp(&b.1.fg)
            .expect("finite F_G")
            .then(a.0.cmp(&b.0))
    });
    all.into_iter().next().expect("at least one seed ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabu::TabuSearch;
    use crate::testutil::{dumbbell_table, dumbbell_truth};

    #[test]
    fn parallel_matches_quality_of_serial() {
        let table = dumbbell_table();
        let mapper = TabuSearch::default();
        let (_, par) = parallel_multi_seed(&mapper, &table, &[4, 4], 100, 8, 4);
        assert!(par.partition.same_grouping(&dumbbell_truth()));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let table = dumbbell_table();
        let mapper = TabuSearch::default();
        let (s1, r1) = parallel_multi_seed(&mapper, &table, &[4, 4], 7, 6, 1);
        let (s2, r2) = parallel_multi_seed(&mapper, &table, &[4, 4], 7, 6, 4);
        let (s3, r3) = parallel_multi_seed(&mapper, &table, &[4, 4], 7, 6, 16);
        assert_eq!(s1, s2);
        assert_eq!(s2, s3);
        assert_eq!(r1.partition, r2.partition);
        assert_eq!(r2.partition, r3.partition);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_panics() {
        let table = dumbbell_table();
        let _ = parallel_multi_seed(&TabuSearch::default(), &table, &[4, 4], 0, 0, 2);
    }
}
