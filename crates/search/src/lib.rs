#![warn(missing_docs)]

//! Heuristic search methods for the mapping problem (§4.2 and §2).
//!
//! The mapping of processes to processors is NP-complete; the paper
//! minimizes the global similarity function `F_G` with a **tabu search**
//! variant ([`tabu::TabuSearch`]) and reports that it matched or beat the
//! other heuristics it tried at lower cost. This crate implements:
//!
//! * [`tabu`] — the paper's method: best-improving cross-cluster swap;
//!   at a local minimum take the least-worsening swap and forbid the
//!   inverse for `h` iterations; stop a seed when the same local minimum is
//!   reached three times or the iteration budget is spent; restart from
//!   multiple random seeds (10 in the paper);
//! * [`exhaustive`] — exact enumeration of balanced partitions (feasible up
//!   to 16 switches, as in the paper's optimality check);
//! * [`astar`] — A* tree search with an admissible completion bound (§2);
//! * [`clustering`] — classical agglomerative clustering, the baseline §3
//!   argues cannot work on the non-metric table;
//! * [`anneal`] — simulated annealing (§2);
//! * [`genetic`] — a genetic algorithm and genetic simulated annealing
//!   (§2);
//! * [`kernighan_lin`] — Kernighan–Lin pass-based refinement, the classic
//!   graph-partitioning comparator;
//! * [`descent`] — steepest descent and random sampling baselines;
//! * [`parallel`] — a deterministic multi-threaded multi-seed driver;
//! * [`pool`] — the scoped work-stealing pool behind every parallel
//!   driver in the crate (tabu restarts, multi-seed runs, genetic
//!   fitness evaluation);
//! * [`compute`] — computation-side baselines (OLB, min-min, max-min) for
//!   the future-work combined scheduling experiments.
//!
//! All methods implement the [`Mapper`] trait: given a distance table and
//! cluster sizes, produce the lowest-`F_G` partition they can find.

pub mod anneal;
pub mod astar;
pub mod clustering;
pub mod coarsen;
pub mod compute;
pub mod descent;
pub mod exhaustive;
pub mod genetic;
pub mod kernighan_lin;
pub mod multilevel;
pub mod parallel;
pub mod pool;
pub mod tabu;

pub use anneal::{SimulatedAnnealing, SimulatedAnnealingParams};
pub use astar::AStarSearch;
pub use clustering::AgglomerativeClustering;
pub use coarsen::{build_hierarchy, can_coarsen, coarsen_level, CoarseLevel, Hierarchy};
pub use descent::{RandomSampling, SteepestDescent};
pub use exhaustive::{enumerate_partitions, ExhaustiveSearch};
pub use genetic::{GeneticParams, GeneticSearch, GeneticSimulatedAnnealing};
pub use kernighan_lin::KernighanLin;
pub use multilevel::{
    multilevel_map, MapStrategy, MultilevelMapper, MultilevelParams, MultilevelStats,
};
pub use parallel::parallel_multi_seed;
pub use pool::{resolve_threads, run_indexed};
pub use tabu::{TabuParams, TabuSearch, TabuTrace, TraceEvent};

use commsched_core::Partition;
use commsched_distance::DistanceTable;
use rand::RngCore;

/// Result of one mapping search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Best partition found.
    pub partition: Partition,
    /// Its `F_G` value (the minimized target function).
    pub fg: f64,
    /// Number of objective/delta evaluations spent (cost proxy for the
    /// heuristic-comparison ablation).
    pub evaluations: u64,
}

/// A mapping search method: minimize `F_G` over partitions of
/// `table.n()` switches with the given cluster sizes.
pub trait Mapper: Send + Sync {
    /// Method name for reports.
    fn name(&self) -> &'static str;

    /// Run the search. Deterministic given the `rng` state.
    ///
    /// # Panics
    /// Implementations may panic if `sizes` does not sum to `table.n()` or
    /// contains zeros; validate with [`check_sizes`] first when unsure.
    fn search(&self, table: &DistanceTable, sizes: &[usize], rng: &mut dyn RngCore)
        -> SearchResult;
}

/// Validate that `sizes` is a plausible cluster-size vector for `n`
/// switches. Returns `false` on empty sizes, zero entries, or wrong total.
pub fn check_sizes(n: usize, sizes: &[usize]) -> bool {
    !sizes.is_empty() && sizes.iter().all(|&s| s > 0) && sizes.iter().sum::<usize>() == n
}

/// Shared test helpers for the search implementations.
#[cfg(test)]
pub(crate) mod testutil {
    use commsched_distance::{equivalent_distance_table, DistanceTable};
    use commsched_routing::ShortestPathRouting;
    use commsched_topology::designed;

    /// Distance table of a "two obvious clusters" dumbbell: two 4-cycles
    /// joined by one link. Optimal 2×4 partition = the two squares.
    pub fn dumbbell_table() -> DistanceTable {
        let topo = commsched_topology::TopologyBuilder::new(8, 1)
            .links([
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (3, 4),
            ])
            .build()
            .unwrap();
        let routing = ShortestPathRouting::new(&topo).unwrap();
        equivalent_distance_table(&topo, &routing).unwrap()
    }

    /// Table for the paper's designed 24-switch network.
    pub fn rings_table() -> DistanceTable {
        let topo = designed::paper_24_switch();
        let routing = commsched_routing::UpDownRouting::new(&topo, 0).unwrap();
        equivalent_distance_table(&topo, &routing).unwrap()
    }

    /// The optimal dumbbell grouping.
    pub fn dumbbell_truth() -> commsched_core::Partition {
        commsched_core::Partition::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap()
    }
}
