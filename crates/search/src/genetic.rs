//! Genetic algorithm and genetic simulated annealing (§2).
//!
//! The paper's §2 surveys both: a GA works on a population of chromosomes
//! (candidate mappings) with selection, crossover and mutation; *genetic
//! simulated annealing* (Shroff et al., HCW'96) combines the population
//! with a Metropolis acceptance rule so that each individual performs an
//! annealed local search while selection spreads good material.
//!
//! Chromosome = a [`Partition`]'s assignment vector with fixed cluster
//! sizes; crossover is uniform with a size-repair pass; mutation is a
//! random cross-cluster swap.

use crate::{check_sizes, pool, Mapper, SearchResult};
use commsched_core::{similarity_fg, Partition, SwapEvaluator};
use commsched_distance::DistanceTable;
use rand::{Rng, RngCore};

/// Parameters shared by [`GeneticSearch`] and [`GeneticSimulatedAnnealing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticParams {
    /// Population size.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Per-child probability of a mutation swap.
    pub mutation_rate: f64,
    /// Elite individuals copied unchanged each generation.
    pub elites: usize,
    /// GSA only: initial temperature as a multiple of the mean initial
    /// `F_G`.
    pub initial_temp_factor: f64,
    /// GSA only: geometric cooling per generation.
    pub cooling: f64,
    /// Worker threads for fitness evaluation (0 = one per available
    /// CPU). All randomness is drawn on the caller's thread, so results
    /// are identical for every thread count.
    pub threads: usize,
}

impl Default for GeneticParams {
    fn default() -> Self {
        Self {
            population: 32,
            generations: 120,
            mutation_rate: 0.7,
            elites: 2,
            initial_temp_factor: 0.3,
            cooling: 0.95,
            threads: 0,
        }
    }
}

fn random_population(
    table: &DistanceTable,
    sizes: &[usize],
    count: usize,
    rng: &mut dyn RngCore,
) -> Vec<(f64, Partition)> {
    (0..count)
        .map(|_| {
            let p = Partition::random(table.n(), sizes, rng).expect("validated sizes");
            (similarity_fg(&p, table), p)
        })
        .collect()
}

/// Tournament selection of 2: pick two random individuals, keep the fitter.
fn tournament<'a>(pop: &'a [(f64, Partition)], rng: &mut dyn RngCore) -> &'a (f64, Partition) {
    let a = &pop[rng.gen_range(0..pop.len())];
    let b = &pop[rng.gen_range(0..pop.len())];
    if a.0 <= b.0 {
        a
    } else {
        b
    }
}

/// Uniform crossover with size repair: take each gene from a random parent,
/// then move switches out of overfull clusters into underfull ones until
/// the size vector matches.
fn crossover(a: &Partition, b: &Partition, sizes: &[usize], rng: &mut dyn RngCore) -> Partition {
    let n = a.num_switches();
    let m = sizes.len();
    let mut assign: Vec<usize> = (0..n)
        .map(|i| {
            if rng.gen::<bool>() {
                a.cluster_of(i)
            } else {
                b.cluster_of(i)
            }
        })
        .collect();
    // Repair sizes.
    let mut counts = vec![0usize; m];
    for &c in &assign {
        counts[c] += 1;
    }
    while let Some(over) = (0..m).find(|&c| counts[c] > sizes[c]) {
        let under = (0..m)
            .find(|&c| counts[c] < sizes[c])
            .expect("totals match, so an underfull cluster exists");
        // Move a random member of the overfull cluster.
        let members: Vec<usize> = (0..n).filter(|&i| assign[i] == over).collect();
        let victim = members[rng.gen_range(0..members.len())];
        assign[victim] = under;
        counts[over] -= 1;
        counts[under] += 1;
    }
    Partition::new(assign, m).expect("repaired assignment is valid")
}

/// Random cross-cluster swap mutation (in place); no-op when the partition
/// is a single cluster.
fn mutate(p: &mut Partition, rng: &mut dyn RngCore) {
    let n = p.num_switches();
    for _ in 0..16 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if p.cluster_of(a) != p.cluster_of(b) {
            p.swap(a, b);
            return;
        }
    }
}

/// Classic generational GA with elitism.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneticSearch {
    /// Evolution parameters.
    pub params: GeneticParams,
}

impl Mapper for GeneticSearch {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        rng: &mut dyn RngCore,
    ) -> SearchResult {
        assert!(check_sizes(table.n(), sizes), "invalid cluster sizes");
        let p = &self.params;
        let mut pop = random_population(table, sizes, p.population.max(2), rng);
        let mut evaluations = pop.len() as u64;
        for _ in 0..p.generations {
            pop.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite fitness"));
            let elites: Vec<(f64, Partition)> =
                pop.iter().take(p.elites.min(pop.len())).cloned().collect();
            // Breed serially (all RNG draws stay on this thread, in the
            // same order a serial loop would make them)…
            let children: Vec<Partition> = (0..pop.len() - elites.len())
                .map(|_| {
                    let pa = tournament(&pop, rng);
                    let pb = tournament(&pop, rng);
                    let mut child = crossover(&pa.1, &pb.1, sizes, rng);
                    if rng.gen::<f64>() < p.mutation_rate {
                        mutate(&mut child, rng);
                    }
                    child
                })
                .collect();
            // …then score the brood on the worker pool; `similarity_fg`
            // is pure, so the thread count cannot change the outcome.
            let scores = pool::run_indexed(children.len(), p.threads, |i| {
                similarity_fg(&children[i], table)
            });
            evaluations += children.len() as u64;
            let mut next = elites;
            next.extend(scores.into_iter().zip(children));
            pop = next;
        }
        let (fg, partition) = pop
            .into_iter()
            .min_by(|x, y| x.0.partial_cmp(&y.0).expect("finite fitness"))
            .expect("non-empty population");
        SearchResult {
            partition,
            fg,
            evaluations,
        }
    }
}

/// Genetic simulated annealing: every individual performs one annealed swap
/// per generation (Metropolis acceptance); selection periodically replaces
/// the worst individuals with mutated copies of the best.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneticSimulatedAnnealing {
    /// Evolution parameters.
    pub params: GeneticParams,
}

impl Mapper for GeneticSimulatedAnnealing {
    fn name(&self) -> &'static str {
        "genetic-simulated-annealing"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        rng: &mut dyn RngCore,
    ) -> SearchResult {
        assert!(check_sizes(table.n(), sizes), "invalid cluster sizes");
        let p = &self.params;
        let n = table.n();
        let pop_size = p.population.max(2);
        // Draw the population serially, then build the evaluators (each
        // one computes its initial F_G) on the worker pool.
        let parts: Vec<Partition> = (0..pop_size)
            .map(|_| Partition::random(n, sizes, rng).expect("validated sizes"))
            .collect();
        let mut pop: Vec<SwapEvaluator> = pool::run_indexed(parts.len(), p.threads, |i| {
            SwapEvaluator::new(parts[i].clone(), table)
        });
        let mut evaluations = pop.len() as u64;
        let mean_fg = pop.iter().map(SwapEvaluator::fg).sum::<f64>() / pop.len() as f64;
        let mut temp = (mean_fg * p.initial_temp_factor).max(1e-6);
        let mut best: (f64, Partition) = pop
            .iter()
            .map(|e| (e.fg(), e.partition().clone()))
            .min_by(|x, y| x.0.partial_cmp(&y.0).expect("finite fitness"))
            .expect("non-empty population");

        for generation in 0..p.generations {
            for eval in &mut pop {
                // One annealed swap proposal per individual.
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if eval.partition().cluster_of(a) == eval.partition().cluster_of(b) {
                    continue;
                }
                let delta = eval.delta_fg(a, b);
                evaluations += 1;
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                    eval.apply_swap(a, b);
                    let fg = eval.fg();
                    if fg < best.0 {
                        best = (fg, eval.partition().clone());
                    }
                }
            }
            // Selection pressure every few generations: clone the best over
            // the worst, with a mutation kick.
            if generation % 10 == 9 {
                let best_idx = (0..pop.len())
                    .min_by(|&x, &y| pop[x].fg().partial_cmp(&pop[y].fg()).expect("finite"))
                    .expect("non-empty");
                let worst_idx = (0..pop.len())
                    .max_by(|&x, &y| pop[x].fg().partial_cmp(&pop[y].fg()).expect("finite"))
                    .expect("non-empty");
                if best_idx != worst_idx {
                    let mut clone = pop[best_idx].partition().clone();
                    mutate(&mut clone, rng);
                    pop[worst_idx] = SwapEvaluator::new(clone, table);
                    evaluations += 1;
                }
            }
            temp = (temp * p.cooling).max(1e-9);
        }
        SearchResult {
            partition: best.1,
            fg: best.0,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, dumbbell_truth};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ga_finds_dumbbell() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(31);
        let res = GeneticSearch::default().search(&table, &[4, 4], &mut rng);
        assert!(
            res.partition.same_grouping(&dumbbell_truth()),
            "got {} fg {}",
            res.partition,
            res.fg
        );
    }

    #[test]
    fn gsa_finds_dumbbell() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(32);
        let res = GeneticSimulatedAnnealing::default().search(&table, &[4, 4], &mut rng);
        assert!(
            res.partition.same_grouping(&dumbbell_truth()),
            "got {} fg {}",
            res.partition,
            res.fg
        );
    }

    #[test]
    fn crossover_preserves_sizes() {
        let mut rng = StdRng::seed_from_u64(33);
        let sizes = [3usize, 2, 3];
        let a = Partition::random(8, &sizes, &mut rng).unwrap();
        let b = Partition::random(8, &sizes, &mut rng).unwrap();
        for _ in 0..50 {
            let child = crossover(&a, &b, &sizes, &mut rng);
            assert_eq!(child.sizes(), vec![3, 2, 3]);
        }
    }

    #[test]
    fn crossover_of_identical_parents_is_identity() {
        let mut rng = StdRng::seed_from_u64(34);
        let a = Partition::random(8, &[4, 4], &mut rng).unwrap();
        let child = crossover(&a, &a, &[4, 4], &mut rng);
        assert_eq!(child, a);
    }

    #[test]
    fn mutate_preserves_sizes() {
        let mut rng = StdRng::seed_from_u64(35);
        let mut p = Partition::random(9, &[3, 3, 3], &mut rng).unwrap();
        for _ in 0..50 {
            mutate(&mut p, &mut rng);
            assert_eq!(p.sizes(), vec![3, 3, 3]);
        }
    }

    #[test]
    fn mutate_single_cluster_noop() {
        let mut rng = StdRng::seed_from_u64(36);
        let mut p = Partition::new(vec![0, 0, 0], 1).unwrap();
        mutate(&mut p, &mut rng);
        assert_eq!(p.assignment(), &[0, 0, 0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let table = dumbbell_table();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            GeneticSearch::default().search(&table, &[4, 4], &mut rng)
        };
        assert_eq!(run(1).fg, run(1).fg);
        assert_eq!(run(1).partition, run(1).partition);
    }
}
