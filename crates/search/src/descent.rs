//! Baseline searches: steepest descent and blind random sampling.
//!
//! Steepest descent is the tabu search with the escape mechanism removed —
//! the natural ablation for the tabu list. Random sampling is the paper's
//! "random mapping" baseline dressed as a search: draw `samples` random
//! partitions, keep the best.

use crate::{check_sizes, Mapper, SearchResult};
use commsched_core::{Partition, SwapEvaluator};
use commsched_distance::DistanceTable;
use rand::RngCore;

/// Multi-start steepest descent: from each random start, apply the best
/// improving cross-cluster swap until a local minimum.
#[derive(Debug, Clone, Copy)]
pub struct SteepestDescent {
    /// Number of random starts.
    pub seeds: usize,
}

impl Default for SteepestDescent {
    fn default() -> Self {
        Self { seeds: 10 }
    }
}

impl Mapper for SteepestDescent {
    fn name(&self) -> &'static str {
        "steepest-descent"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        rng: &mut dyn RngCore,
    ) -> SearchResult {
        assert!(check_sizes(table.n(), sizes), "invalid cluster sizes");
        const EPS: f64 = 1e-12;
        let mut best: Option<(f64, Partition)> = None;
        let mut evaluations = 0u64;
        for _ in 0..self.seeds.max(1) {
            let start = Partition::random(table.n(), sizes, rng).expect("validated sizes");
            let mut eval = SwapEvaluator::new(start, table);
            loop {
                let n = table.n();
                let mut best_move: Option<(f64, usize, usize)> = None;
                for a in 0..n {
                    for b in (a + 1)..n {
                        if eval.partition().cluster_of(a) == eval.partition().cluster_of(b) {
                            continue;
                        }
                        let d = eval.delta_fg(a, b);
                        evaluations += 1;
                        if best_move.is_none_or(|(bd, _, _)| d < bd) {
                            best_move = Some((d, a, b));
                        }
                    }
                }
                match best_move {
                    Some((d, a, b)) if d < -EPS => eval.apply_swap(a, b),
                    _ => break,
                }
            }
            let fg = eval.fg();
            if best.as_ref().is_none_or(|(f, _)| fg < *f) {
                best = Some((fg, eval.into_partition()));
            }
        }
        let (fg, partition) = best.expect("at least one seed");
        SearchResult {
            partition,
            fg,
            evaluations,
        }
    }
}

/// Draw `samples` random partitions, keep the lowest `F_G`.
#[derive(Debug, Clone, Copy)]
pub struct RandomSampling {
    /// Number of random partitions to draw.
    pub samples: usize,
}

impl Default for RandomSampling {
    fn default() -> Self {
        Self { samples: 1000 }
    }
}

impl Mapper for RandomSampling {
    fn name(&self) -> &'static str {
        "random-sampling"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        rng: &mut dyn RngCore,
    ) -> SearchResult {
        assert!(check_sizes(table.n(), sizes), "invalid cluster sizes");
        let mut best: Option<(f64, Partition)> = None;
        for _ in 0..self.samples.max(1) {
            let p = Partition::random(table.n(), sizes, rng).expect("validated sizes");
            let fg = commsched_core::similarity_fg(&p, table);
            if best.as_ref().is_none_or(|(f, _)| fg < *f) {
                best = Some((fg, p));
            }
        }
        let (fg, partition) = best.expect("at least one sample");
        SearchResult {
            partition,
            fg,
            evaluations: self.samples.max(1) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, dumbbell_truth};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn descent_finds_dumbbell() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(8);
        let res = SteepestDescent::default().search(&table, &[4, 4], &mut rng);
        assert!(res.partition.same_grouping(&dumbbell_truth()));
    }

    #[test]
    fn descent_never_worse_than_sampling_start() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(9);
        let descent = SteepestDescent { seeds: 1 }.search(&table, &[4, 4], &mut rng);
        let mut rng = StdRng::seed_from_u64(9);
        let start = Partition::random(8, &[4, 4], &mut rng).unwrap();
        assert!(descent.fg <= commsched_core::similarity_fg(&start, &table) + 1e-12);
    }

    #[test]
    fn sampling_improves_with_more_samples() {
        let table = dumbbell_table();
        let few =
            RandomSampling { samples: 2 }.search(&table, &[4, 4], &mut StdRng::seed_from_u64(10));
        let many =
            RandomSampling { samples: 500 }.search(&table, &[4, 4], &mut StdRng::seed_from_u64(10));
        assert!(many.fg <= few.fg + 1e-12);
        assert_eq!(many.evaluations, 500);
    }

    #[test]
    fn sampling_respects_sizes() {
        let table = dumbbell_table();
        let res =
            RandomSampling { samples: 10 }.search(&table, &[6, 2], &mut StdRng::seed_from_u64(3));
        assert_eq!(res.partition.sizes(), vec![6, 2]);
    }
}
