//! A* tree search for the mapping problem (§2's third comparison
//! heuristic, after Kafil & Ahmad).
//!
//! Nodes of the search tree assign switches to clusters one at a time (in
//! switch order, with the same equal-size symmetry breaking as the
//! exhaustive enumeration). The path cost `g` is the accumulated
//! intracluster quadratic sum; the heuristic `h` lower-bounds the cost any
//! completion must still pay: every unassigned switch will join *some*
//! cluster with free capacity and then pays at least its distance-square
//! sum to that cluster's already-assigned members — so
//! `h = Σ_{v unassigned} min_{c: free} Σ_{u ∈ c} T²(v, u)` is admissible
//! (pair costs among two unassigned switches are bounded by zero).
//!
//! With an admissible `h`, the first goal popped is optimal. A node budget
//! caps memory/time; when exhausted the best goal found so far is returned
//! (flagged in [`SearchResult::evaluations`] semantics as usual).

use crate::{check_sizes, Mapper, SearchResult};
use commsched_core::Partition;
use commsched_distance::DistanceTable;
use rand::RngCore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A* mapper with a node-expansion budget.
#[derive(Debug, Clone, Copy)]
pub struct AStarSearch {
    /// Maximum heap pops before falling back to the best goal seen.
    pub max_expansions: usize,
}

impl Default for AStarSearch {
    fn default() -> Self {
        Self {
            max_expansions: 2_000_000,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// f = g + h (lower bound on any completion through this node).
    f: f64,
    /// Accumulated intracluster cost of the assigned prefix.
    g: f64,
    /// Per-switch assignment for `assign.len()` switches.
    assign: Vec<usize>,
    /// Remaining capacity per cluster.
    remaining: Vec<usize>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f (BinaryHeap is a max-heap).
        other
            .f
            .partial_cmp(&self.f)
            .expect("finite costs")
            // Deterministic tie-breaking: deeper nodes first.
            .then_with(|| self.assign.len().cmp(&other.assign.len()))
    }
}

/// Admissible completion bound: every unassigned switch must pay at least
/// its cheapest attachment to a cluster with free capacity.
fn heuristic(table: &DistanceTable, assign: &[usize], remaining: &[usize], n: usize) -> f64 {
    let mut h = 0.0;
    for v in assign.len()..n {
        let mut best = f64::INFINITY;
        for (c, &rem) in remaining.iter().enumerate() {
            if rem == 0 {
                continue;
            }
            let attach: f64 = assign
                .iter()
                .enumerate()
                .filter(|&(_, &cu)| cu == c)
                .map(|(u, _)| table.get_sq(v, u))
                .sum();
            best = best.min(attach);
        }
        if best.is_finite() {
            h += best;
        }
    }
    h
}

impl Mapper for AStarSearch {
    fn name(&self) -> &'static str {
        "a-star"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        _rng: &mut dyn RngCore,
    ) -> SearchResult {
        assert!(check_sizes(table.n(), sizes), "invalid cluster sizes");
        let n = table.n();
        let m = sizes.len();
        let norm = {
            let pairs: usize = sizes.iter().map(|&x| x * (x - 1) / 2).sum();
            pairs as f64 * table.mean_square()
        };

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            f: 0.0,
            g: 0.0,
            assign: Vec::new(),
            remaining: sizes.to_vec(),
        });
        let mut evaluations = 0u64;
        let mut best_goal: Option<(f64, Vec<usize>)> = None;
        let mut expansions = 0usize;

        while let Some(node) = heap.pop() {
            expansions += 1;
            if expansions > self.max_expansions {
                break;
            }
            // Prune against the incumbent.
            if let Some((best_g, _)) = &best_goal {
                if node.f >= *best_g - 1e-15 {
                    continue;
                }
            }
            let depth = node.assign.len();
            if depth == n {
                if best_goal.as_ref().is_none_or(|(g, _)| node.g < *g) {
                    best_goal = Some((node.g, node.assign.clone()));
                }
                // Admissible h: the first goal popped is optimal.
                break;
            }
            // Expand: assign switch `depth` to each eligible cluster,
            // breaking symmetry among still-empty clusters of equal size.
            let mut tried_empty_of_size: Vec<usize> = Vec::new();
            for c in 0..m {
                if node.remaining[c] == 0 {
                    continue;
                }
                let is_empty = node.remaining[c] == sizes[c];
                if is_empty {
                    if tried_empty_of_size.contains(&sizes[c]) {
                        continue;
                    }
                    tried_empty_of_size.push(sizes[c]);
                }
                let attach: f64 = node
                    .assign
                    .iter()
                    .enumerate()
                    .filter(|&(_, &cu)| cu == c)
                    .map(|(u, _)| table.get_sq(depth, u))
                    .sum();
                let mut assign = node.assign.clone();
                assign.push(c);
                let mut remaining = node.remaining.clone();
                remaining[c] -= 1;
                let g = node.g + attach;
                let h = heuristic(table, &assign, &remaining, n);
                evaluations += 1;
                let f = g + h;
                if let Some((best_g, _)) = &best_goal {
                    if f >= *best_g - 1e-15 {
                        continue;
                    }
                }
                heap.push(Node {
                    f,
                    g,
                    assign,
                    remaining,
                });
            }
        }

        // Budget fallback: greedily complete from scratch (cheapest
        // attachment per switch) so a result always exists.
        let (g, assign) = best_goal.unwrap_or_else(|| {
            let mut assign: Vec<usize> = Vec::with_capacity(n);
            let mut remaining = sizes.to_vec();
            let mut g = 0.0;
            for v in 0..n {
                let (c, attach) = (0..m)
                    .filter(|&c| remaining[c] > 0)
                    .map(|c| {
                        let attach: f64 = assign
                            .iter()
                            .enumerate()
                            .filter(|&(_, &cu)| cu == c)
                            .map(|(u, _)| table.get_sq(v, u))
                            .sum();
                        (c, attach)
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    .expect("capacity always remains");
                assign.push(c);
                remaining[c] -= 1;
                g += attach;
            }
            (g, assign)
        });
        let partition = Partition::new(assign, m).expect("complete assignment is valid");
        SearchResult {
            partition,
            fg: if norm == 0.0 { 0.0 } else { g / norm },
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, dumbbell_truth};
    use crate::ExhaustiveSearch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn astar_finds_dumbbell_optimum() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(0);
        let res = AStarSearch::default().search(&table, &[4, 4], &mut rng);
        assert!(res.partition.same_grouping(&dumbbell_truth()));
    }

    #[test]
    fn astar_matches_exhaustive() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(0);
        for sizes in [vec![4usize, 4], vec![2, 2, 2, 2], vec![6, 2], vec![3, 3, 2]] {
            let a = AStarSearch::default().search(&table, &sizes, &mut rng);
            let e = ExhaustiveSearch.search(&table, &sizes, &mut rng);
            assert!(
                (a.fg - e.fg).abs() < 1e-9,
                "sizes {sizes:?}: A* {} vs exhaustive {}",
                a.fg,
                e.fg
            );
        }
    }

    #[test]
    fn astar_explores_fewer_nodes_than_exhaustive() {
        // 12-switch random net, 4 clusters of 3: 15 400 groupings for the
        // exhaustive pass; A* must match the optimum in fewer expansions.
        use commsched_distance::equivalent_distance_table;
        use commsched_routing::UpDownRouting;
        use commsched_topology::{random_regular, RandomTopologyConfig};
        let mut trng = StdRng::seed_from_u64(50);
        let topo = random_regular(RandomTopologyConfig::paper(12), &mut trng).unwrap();
        let routing = UpDownRouting::new(&topo, 0).unwrap();
        let table = equivalent_distance_table(&topo, &routing).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let a = AStarSearch::default().search(&table, &[3, 3, 3, 3], &mut rng);
        let e = ExhaustiveSearch.search(&table, &[3, 3, 3, 3], &mut rng);
        assert!((a.fg - e.fg).abs() < 1e-9);
        assert!(
            a.evaluations < e.evaluations,
            "A* {} vs exhaustive {}",
            a.evaluations,
            e.evaluations
        );
    }

    #[test]
    fn astar_budget_fallback_is_valid() {
        // With a tiny expansion budget the greedy fallback must still
        // return a size-respecting partition.
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(0);
        let res = AStarSearch { max_expansions: 1 }.search(&table, &[4, 4], &mut rng);
        assert_eq!(res.partition.sizes(), vec![4, 4]);
        let direct = commsched_core::similarity_fg(&res.partition, &table);
        assert!((res.fg - direct).abs() < 1e-9);
    }

    #[test]
    fn astar_result_consistent_with_direct_eval() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(0);
        let res = AStarSearch::default().search(&table, &[4, 4], &mut rng);
        let direct = commsched_core::similarity_fg(&res.partition, &table);
        assert!((res.fg - direct).abs() < 1e-9);
    }

    #[test]
    fn heuristic_is_admissible_on_samples() {
        // h at the root must lower-bound the true optimum numerator.
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(0);
        let e = ExhaustiveSearch.search(&table, &[4, 4], &mut rng);
        let pairs: f64 = (4 * 3 / 2 * 2) as f64;
        let optimum_numerator = e.fg * pairs * table.mean_square();
        let h0 = heuristic(&table, &[], &[4, 4], 8);
        assert!(h0 <= optimum_numerator + 1e-9);
    }
}
