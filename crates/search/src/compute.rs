//! Computation-side scheduling baselines.
//!
//! The paper positions its technique as one half of an ideal scheduler that
//! would "choose either a computation-aware or a communication-aware task
//! scheduling strategy depending on the kind of requirements that leads to
//! the system performance bottleneck" (§1). This module supplies the
//! computation-aware half it cites (§2): the classic static mapping
//! heuristics for independent tasks on heterogeneous machines — OLB, UDA
//! (a.k.a. minimum execution time), Min-min and Max-min — over an expected
//! time to compute (ETC) matrix, plus a combined objective blending
//! makespan with the communication criterion.

use commsched_core::{similarity_fg, Partition};
use commsched_distance::DistanceTable;

/// Expected-time-to-compute matrix: `etc[task][machine]` is the time the
/// task needs on the machine.
#[derive(Debug, Clone, PartialEq)]
pub struct EtcMatrix {
    tasks: usize,
    machines: usize,
    data: Vec<f64>,
}

impl EtcMatrix {
    /// Build from a row-major vector (`tasks × machines`).
    ///
    /// # Panics
    /// Panics on a shape mismatch or non-positive entries.
    pub fn from_vec(tasks: usize, machines: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), tasks * machines, "shape mismatch");
        assert!(
            data.iter().all(|&x| x > 0.0),
            "execution times must be positive"
        );
        Self {
            tasks,
            machines,
            data,
        }
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Time of `task` on `machine`.
    #[inline]
    pub fn time(&self, task: usize, machine: usize) -> f64 {
        self.data[task * self.machines + machine]
    }
}

/// A computation schedule: per-task machine assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeSchedule {
    /// `machine[t]` runs task `t`.
    pub machine: Vec<usize>,
    /// Completion time of every machine.
    pub machine_finish: Vec<f64>,
}

impl ComputeSchedule {
    /// The makespan (maximum machine completion time).
    pub fn makespan(&self) -> f64 {
        self.machine_finish.iter().copied().fold(0.0, f64::max)
    }
}

fn empty_schedule(etc: &EtcMatrix) -> ComputeSchedule {
    ComputeSchedule {
        machine: vec![usize::MAX; etc.tasks()],
        machine_finish: vec![0.0; etc.machines()],
    }
}

/// Opportunistic Load Balancing: assign each task (in index order) to the
/// machine that becomes *available* earliest, ignoring execution times.
pub fn olb(etc: &EtcMatrix) -> ComputeSchedule {
    let mut s = empty_schedule(etc);
    for t in 0..etc.tasks() {
        let m = argmin(&s.machine_finish);
        s.machine[t] = m;
        s.machine_finish[m] += etc.time(t, m);
    }
    s
}

/// User-Directed Assignment (minimum execution time): assign each task to
/// the machine where it runs fastest, ignoring machine load.
pub fn uda(etc: &EtcMatrix) -> ComputeSchedule {
    let mut s = empty_schedule(etc);
    for t in 0..etc.tasks() {
        let m = (0..etc.machines())
            .min_by(|&a, &b| {
                etc.time(t, a)
                    .partial_cmp(&etc.time(t, b))
                    .expect("finite ETC")
            })
            .expect("at least one machine");
        s.machine[t] = m;
        s.machine_finish[m] += etc.time(t, m);
    }
    s
}

/// Shared core of Min-min and Max-min: repeatedly compute, for every
/// unassigned task, its minimum completion time over machines; then commit
/// the task selected by `pick_max` (false → Min-min, true → Max-min).
fn minmax_core(etc: &EtcMatrix, pick_max: bool) -> ComputeSchedule {
    let mut s = empty_schedule(etc);
    let mut unassigned: Vec<usize> = (0..etc.tasks()).collect();
    while !unassigned.is_empty() {
        let mut chosen: Option<(f64, usize, usize)> = None; // (mct, task, machine)
        for &t in &unassigned {
            let (m, mct) = (0..etc.machines())
                .map(|m| (m, s.machine_finish[m] + etc.time(t, m)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ETC"))
                .expect("at least one machine");
            let better = match chosen {
                None => true,
                Some((best, _, _)) => {
                    if pick_max {
                        mct > best
                    } else {
                        mct < best
                    }
                }
            };
            if better {
                chosen = Some((mct, t, m));
            }
        }
        let (_, t, m) = chosen.expect("unassigned non-empty");
        s.machine[t] = m;
        s.machine_finish[m] += etc.time(t, m);
        unassigned.retain(|&x| x != t);
    }
    s
}

/// Min-min: repeatedly commit the task with the smallest minimum completion
/// time.
pub fn min_min(etc: &EtcMatrix) -> ComputeSchedule {
    minmax_core(etc, false)
}

/// Max-min: repeatedly commit the task with the *largest* minimum
/// completion time (long tasks first).
pub fn max_min(etc: &EtcMatrix) -> ComputeSchedule {
    minmax_core(etc, true)
}

/// The future-work combined objective: a convex blend of normalized
/// makespan and the communication criterion `F_G`.
/// `alpha = 1` is purely computation-aware; `alpha = 0` purely
/// communication-aware.
///
/// # Panics
/// Panics if `alpha` is outside `[0, 1]` or `reference_makespan <= 0`.
pub fn combined_cost(
    makespan: f64,
    reference_makespan: f64,
    partition: &Partition,
    table: &DistanceTable,
    alpha: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha in [0, 1]");
    assert!(reference_makespan > 0.0, "reference makespan positive");
    alpha * (makespan / reference_makespan) + (1.0 - alpha) * similarity_fg(partition, table)
}

fn argmin(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 tasks × 2 machines; machine 1 is uniformly twice as fast.
    fn hetero_etc() -> EtcMatrix {
        EtcMatrix::from_vec(3, 2, vec![4.0, 2.0, 8.0, 4.0, 2.0, 1.0])
    }

    #[test]
    fn olb_balances_availability() {
        let s = olb(&hetero_etc());
        // t0 -> m0 (both free, argmin picks 0), t1 -> m1 (m0 busy 4 > 0),
        // t2 -> m1? finish m0=4, m1=4 -> argmin 0 -> t2 on m0.
        assert_eq!(s.machine, vec![0, 1, 0]);
        assert!((s.makespan() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn uda_chases_fast_machine() {
        let s = uda(&hetero_etc());
        // Everything lands on machine 1 (always fastest): makespan 7.
        assert_eq!(s.machine, vec![1, 1, 1]);
        assert!((s.makespan() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn min_min_accounts_for_load_unlike_uda() {
        // Both tasks are fastest on machine 1, but min-min sees the queue:
        // it offloads the second task to machine 0 (completion 3 < 4).
        let etc = EtcMatrix::from_vec(2, 2, vec![3.0, 2.0, 3.0, 2.0]);
        let s = min_min(&etc);
        assert!((s.makespan() - 3.0).abs() < 1e-12);
        let u = uda(&etc);
        assert!((u.makespan() - 4.0).abs() < 1e-12);
        assert!(s.makespan() < u.makespan());
    }

    #[test]
    fn max_min_schedules_long_tasks_first() {
        let etc = EtcMatrix::from_vec(3, 2, vec![10.0, 10.0, 1.0, 1.0, 1.0, 1.0]);
        let s = max_min(&etc);
        // The long task goes first and alone; the two short ones share the
        // other machine: makespan 10.
        assert!((s.makespan() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn min_min_commits_short_tasks_first() {
        // t0 has the smaller MCT and is committed first to machine 0; t1
        // then still completes earliest on the loaded machine 0 (1+2 < 4).
        let etc = EtcMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        let s = min_min(&etc);
        assert_eq!(s.machine, vec![0, 0]);
        assert!((s.makespan() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn schedules_cover_all_tasks_exactly_once() {
        let etc = EtcMatrix::from_vec(6, 3, (0..18).map(|i| 1.0 + (i % 5) as f64).collect());
        for s in [olb(&etc), uda(&etc), min_min(&etc), max_min(&etc)] {
            assert_eq!(s.machine.len(), 6);
            assert!(s.machine.iter().all(|&m| m < 3));
            let sum: f64 = (0..6).map(|t| etc.time(t, s.machine[t])).sum();
            let finish: f64 = s.machine_finish.iter().sum();
            assert!((sum - finish).abs() < 1e-9);
        }
    }

    #[test]
    fn combined_cost_interpolates() {
        use crate::testutil::dumbbell_table;
        let table = dumbbell_table();
        let p = crate::testutil::dumbbell_truth();
        let comm_only = combined_cost(10.0, 10.0, &p, &table, 0.0);
        let comp_only = combined_cost(10.0, 10.0, &p, &table, 1.0);
        let blend = combined_cost(10.0, 10.0, &p, &table, 0.5);
        assert!((comp_only - 1.0).abs() < 1e-12);
        assert!((blend - 0.5 * (comm_only + comp_only)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn etc_rejects_nonpositive() {
        let _ = EtcMatrix::from_vec(1, 2, vec![1.0, 0.0]);
    }
}
