//! Matching-based coarsening for the multilevel mapping pipeline.
//!
//! Following Schulz & Träff ("Better Process Mapping and Sparse Quadratic
//! Assignment"), large instances are contracted level by level before the
//! expensive search runs: each level pairs up *distance-similar* switches
//! (the analogue of heavy-edge matching under the paper's similarity
//! objective — the closer two switches are in the table of equivalent
//! distances, the more the objective wants them in one cluster) and
//! replaces every pair with one coarse node.
//!
//! # The coarse objective is the fine objective
//!
//! `F_G` (Eq. 2) is `Σ_{same-cluster pairs} T²(a, b)` over a constant
//! normalization. For a contraction that merges fine nodes into coarse
//! nodes `A = {a₁, a₂}`, define the coarse table as
//!
//! ```text
//! T'(A, B) = sqrt( Σ_{a ∈ A, b ∈ B} T²(a, b) )
//! ```
//!
//! Then for any coarse partition, the coarse intracluster square sum
//! `Σ T'²(A, B)` equals the fine intracluster square sum minus the
//! *constant* internal terms `T²(a₁, a₂)` of each coarse node — so
//! minimizing coarse `F_G` minimizes fine `F_G` exactly over all
//! partitions that respect the contraction. No approximation enters the
//! hierarchy itself; only the restriction to coarse-respecting partitions
//! does, and uncoarsening refinement lifts that restriction level by
//! level.
//!
//! # Exact cluster sizes
//!
//! The fine problem fixes cluster sizes. Mixed-weight coarse nodes would
//! make coarse size feasibility a knapsack problem, so contraction is a
//! *perfect matching*: every coarse node has weight exactly 2, a level is
//! contracted only when the node count **and every cluster size** are
//! even, and coarse sizes are simply `sizes / 2`. Coarsening stops at the
//! first level where that fails (or when the graph fits the coarse
//! solver).

use commsched_distance::DistanceTable;

/// One contraction step: the matching, the fine→coarse projection, and
/// the coarse table it produces.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// Fine node → coarse node.
    pub map: Vec<usize>,
    /// Coarse node `k` is the contraction of fine pair `pairs[k]`.
    pub pairs: Vec<(usize, usize)>,
    /// Coarse distance table (`T'(A,B) = sqrt(Σ T²)` over members).
    pub table: DistanceTable,
}

/// A full coarsening hierarchy. `levels[0]` contracts the finest graph;
/// `levels.last()` produces the coarsest table handed to the initial map.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    /// Contractions from finest to coarsest.
    pub levels: Vec<CoarseLevel>,
    /// Cluster sizes at the *coarse* side of each level (`sizes / 2^k`).
    pub coarse_sizes: Vec<Vec<usize>>,
}

impl Hierarchy {
    /// The coarsest table, if any contraction happened.
    pub fn coarsest(&self) -> Option<(&DistanceTable, &[usize])> {
        let last = self.levels.last()?;
        let sizes = self.coarse_sizes.last()?;
        Some((&last.table, sizes))
    }
}

/// Whether one more perfect-matching contraction preserves exact cluster
/// sizes: the node count and every cluster size must be even (and the
/// result must still hold at least one node per cluster).
pub fn can_coarsen(n: usize, sizes: &[usize]) -> bool {
    n >= 2 && n.is_multiple_of(2) && sizes.iter().all(|&s| s.is_multiple_of(2))
}

/// Contract one level: greedy nearest-pair perfect matching, then the
/// exact coarse table.
///
/// The matching visits nodes in ascending index order; an unmatched node
/// pairs with the unmatched partner at minimal table distance (ties break
/// toward the lower index), which contracts the distance-similar pairs
/// the objective wants co-located. Fully deterministic — no randomness,
/// no thread-order dependence.
///
/// # Panics
/// Panics if the node count is odd (callers gate on [`can_coarsen`]).
pub fn coarsen_level(table: &DistanceTable) -> CoarseLevel {
    let n = table.n();
    assert!(
        n.is_multiple_of(2),
        "perfect matching needs an even node count"
    );
    let mut map = vec![usize::MAX; n];
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n / 2);
    for i in 0..n {
        if map[i] != usize::MAX {
            continue;
        }
        let row = table.row(i);
        let mut best: Option<(f64, usize)> = None;
        for (j, &d) in row.iter().enumerate().skip(i + 1) {
            if map[j] == usize::MAX && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, j));
            }
        }
        let (_, j) = best.expect("even unmatched count leaves a partner");
        let coarse = pairs.len();
        map[i] = coarse;
        map[j] = coarse;
        pairs.push((i, j));
    }
    let coarse_table = DistanceTable::from_fn(n / 2, |a, b| {
        let (a1, a2) = pairs[a];
        let (b1, b2) = pairs[b];
        (table.get_sq(a1, b1) + table.get_sq(a1, b2) + table.get_sq(a2, b1) + table.get_sq(a2, b2))
            .sqrt()
    });
    CoarseLevel {
        map,
        pairs,
        table: coarse_table,
    }
}

/// Contract level by level until the graph fits `max_coarse_n` nodes or
/// a contraction would break exact cluster sizes. May return an empty
/// hierarchy (no contraction possible or needed).
pub fn build_hierarchy(table: &DistanceTable, sizes: &[usize], max_coarse_n: usize) -> Hierarchy {
    let mut hierarchy = Hierarchy::default();
    let mut current_sizes = sizes.to_vec();
    let mut n = table.n();
    // Borrow juggling: the next level coarsens the previous level's table.
    let mut current: Option<&DistanceTable> = Some(table);
    while n > max_coarse_n.max(2) && can_coarsen(n, &current_sizes) {
        let level = match current.take() {
            Some(t) => coarsen_level(t),
            None => coarsen_level(&hierarchy.levels.last().expect("non-empty").table),
        };
        n = level.table.n();
        current_sizes = current_sizes.iter().map(|&s| s / 2).collect();
        hierarchy.levels.push(level);
        hierarchy.coarse_sizes.push(current_sizes.clone());
    }
    hierarchy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, rings_table};
    use commsched_core::{similarity_fg, Partition};

    #[test]
    fn matching_is_a_permutation() {
        let table = rings_table();
        let level = coarsen_level(&table);
        assert_eq!(level.pairs.len(), 12);
        let mut seen = [false; 24];
        for &(a, b) in &level.pairs {
            assert!(a < b);
            assert!(!seen[a] && !seen[b]);
            seen[a] = true;
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for (fine, &coarse) in level.map.iter().enumerate() {
            let (a, b) = level.pairs[coarse];
            assert!(fine == a || fine == b);
        }
    }

    #[test]
    fn dumbbell_matching_never_crosses_the_bridge() {
        // The two 4-cycles are far apart; nearest-pair matching must pair
        // within each square.
        let table = dumbbell_table();
        let level = coarsen_level(&table);
        for &(a, b) in &level.pairs {
            assert_eq!(a < 4, b < 4, "pair ({a}, {b}) crosses the dumbbell");
        }
    }

    #[test]
    fn coarse_objective_tracks_fine_objective() {
        // For partitions that respect the contraction, coarse and fine
        // intracluster square sums differ by the constant internal terms,
        // so their *ordering* is identical.
        let table = rings_table();
        let level = coarsen_level(&table);
        let internal: f64 = level
            .pairs
            .iter()
            .map(|&(a, b)| table.get_sq(a, b))
            .sum::<f64>();
        // Two coarse partitions of the 12 coarse nodes into 2×6.
        for split in [
            vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1],
            vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
        ] {
            let coarse = Partition::new(split.clone(), 2).unwrap();
            let fine_assign: Vec<usize> = level.map.iter().map(|&c| split[c]).collect();
            let fine = Partition::new(fine_assign, 2).unwrap();
            let coarse_sum = commsched_core::intra_square_sum(&coarse, &level.table);
            let fine_sum = commsched_core::intra_square_sum(&fine, &table);
            assert!(
                (fine_sum - (coarse_sum + internal)).abs() < 1e-9,
                "fine {fine_sum} != coarse {coarse_sum} + internal {internal}"
            );
        }
    }

    #[test]
    fn hierarchy_respects_parity_and_target() {
        let table = rings_table();
        // 24 switches, sizes [6,6,6,6]: one contraction gives 12 nodes,
        // sizes [3,3,3,3] — odd, so coarsening must stop there even with
        // a smaller target.
        let h = build_hierarchy(&table, &[6, 6, 6, 6], 4);
        assert_eq!(h.levels.len(), 1);
        let (coarsest, sizes) = h.coarsest().unwrap();
        assert_eq!(coarsest.n(), 12);
        assert_eq!(sizes, &[3, 3, 3, 3]);
        // Already small enough: no contraction at all.
        let none = build_hierarchy(&table, &[6, 6, 6, 6], 24);
        assert!(none.levels.is_empty());
        assert!(none.coarsest().is_none());
    }

    #[test]
    fn parity_gate() {
        assert!(can_coarsen(8, &[4, 4]));
        assert!(!can_coarsen(8, &[3, 5]));
        assert!(!can_coarsen(7, &[4, 3]));
        assert!(!can_coarsen(0, &[]));
    }

    #[test]
    fn deep_hierarchy_on_dumbbell() {
        // 8 nodes, sizes [4,4] → 4 nodes [2,2] → 2 nodes [1,1].
        let table = dumbbell_table();
        let h = build_hierarchy(&table, &[4, 4], 2);
        assert_eq!(h.levels.len(), 2);
        let (coarsest, sizes) = h.coarsest().unwrap();
        assert_eq!(coarsest.n(), 2);
        assert_eq!(sizes, &[1, 1]);
        // The only balanced 2-partition of the coarsest graph projects to
        // the optimal dumbbell split (each square contracted whole).
        let mid: Vec<usize> = h.levels[1].map.iter().map(|&c| [0, 1][c]).collect();
        let fine: Vec<usize> = h.levels[0].map.iter().map(|&c| mid[c]).collect();
        let fine = Partition::new(fine, 2).unwrap();
        let truth = crate::testutil::dumbbell_truth();
        assert!(fine.same_grouping(&truth), "projected {fine}");
        let fg = similarity_fg(&fine, &table);
        assert!(fg < 1.0);
    }
}
