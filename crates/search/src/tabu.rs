//! The paper's tabu-search variant (§4.2).
//!
//! From a random mapping, each iteration applies the cross-cluster node
//! swap with the greatest decrease of the target function `F_G`. When no
//! swap decreases `F_G` (a local minimum), the swap with the *smallest
//! increase* is applied instead, and the inverse swap becomes tabu for `h`
//! iterations. A seed's search ends when the same local-minimum value has
//! been reached three times or the iteration budget is exhausted; the whole
//! search repeats from `seeds` random starting points and keeps the best
//! local minimum seen.
//!
//! The per-iteration `F(P_i)` trace is recorded so the harness can
//! regenerate Figure 1.

use crate::{check_sizes, Mapper, SearchResult};
use commsched_core::{Partition, SwapEvaluator, SwapObjective, WeightedSwapEvaluator};
use commsched_distance::DistanceTable;
use commsched_telemetry as telemetry;
use commsched_topology::SwitchId;
use rand::RngCore;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Telemetry handles for the tabu driver, resolved once per process.
struct TabuMetrics {
    restarts: telemetry::Counter,
    iterations: telemetry::Counter,
    evaluations: telemetry::Counter,
}

fn tabu_metrics() -> &'static TabuMetrics {
    static METRICS: OnceLock<TabuMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = telemetry::global();
        TabuMetrics {
            restarts: r.counter("tabu_restarts_total", "Tabu random restarts (seeds) run"),
            iterations: r.counter(
                "tabu_iterations_total",
                "Tabu iterations (applied swaps) across all seeds",
            ),
            evaluations: r.counter(
                "tabu_evaluations_total",
                "Candidate swap evaluations (delta computations)",
            ),
        }
    })
}

/// Tuning parameters of the tabu search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabuParams {
    /// Random restarts (the paper uses 10).
    pub seeds: usize,
    /// Iteration budget per seed (the paper uses 20).
    pub max_iterations: usize,
    /// Stop a seed once the same local minimum is reached this many times
    /// (the paper uses 3).
    pub local_min_repeats: usize,
    /// Tabu tenure `h`: how many iterations the inverse of an uphill move
    /// stays forbidden. Unreported in the paper; default 4 (ablated in the
    /// bench suite).
    pub tenure: usize,
    /// Worker threads running the seed restarts (0 = one per available
    /// CPU). The restarts are independent and their merge is ordered by
    /// seed index, so every thread count returns identical results.
    pub threads: usize,
    /// Optional previous mapping used as the first restart instead of a
    /// random start (warm-started remapping after a topology change).
    pub warm_start: Option<Partition>,
}

impl Default for TabuParams {
    fn default() -> Self {
        Self {
            seeds: 10,
            max_iterations: 20,
            local_min_repeats: 3,
            tenure: 4,
            threads: 0,
            warm_start: None,
        }
    }
}

impl TabuParams {
    /// Parameters exactly as reported in the paper.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A heavier-duty setting for networks larger than the paper's:
    /// budget scaled with the switch count.
    pub fn scaled(n: usize) -> Self {
        Self {
            max_iterations: (3 * n).max(20),
            ..Self::default()
        }
    }

    /// Seed the first restart from a previous mapping instead of a random
    /// start. The warm start consumes no randomness, so the remaining
    /// `seeds - 1` restarts draw exactly the partitions a cold run's first
    /// `seeds - 1` seeds would draw.
    #[must_use]
    pub fn warm_start(mut self, prev: Partition) -> Self {
        self.warm_start = Some(prev);
        self
    }
}

/// One event of the search trace: the `F_G` value after a given total
/// iteration (Figure 1's plotted series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Total iteration number across all seeds (X axis of Figure 1).
    pub iteration: usize,
    /// Seed (restart) index this event belongs to.
    pub seed: usize,
    /// `F_G` of the current mapping.
    pub fg: f64,
    /// Whether this event is the random starting point of a seed.
    pub is_seed_start: bool,
}

/// Full trace of a tabu run.
#[derive(Debug, Clone, Default)]
pub struct TabuTrace {
    /// Events in chronological order.
    pub events: Vec<TraceEvent>,
}

impl TabuTrace {
    /// The seed-start events (the peaks of Figure 1).
    pub fn seed_starts(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.is_seed_start)
    }

    /// Minimum `F_G` over the whole trace.
    pub fn min_fg(&self) -> Option<f64> {
        self.events
            .iter()
            .map(|e| e.fg)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x))))
    }
}

/// The tabu-search mapper.
///
/// # Example
///
/// ```
/// use commsched_search::{Mapper, TabuSearch};
/// use commsched_distance::equivalent_distance_table;
/// use commsched_routing::UpDownRouting;
/// use commsched_topology::designed;
/// use rand::SeedableRng;
///
/// let topo = designed::paper_24_switch();
/// let routing = UpDownRouting::new(&topo, 0).unwrap();
/// let table = equivalent_distance_table(&topo, &routing).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let result = TabuSearch::default().search(&table, &[6, 6, 6, 6], &mut rng);
/// // The paper's Figure 4: the search identifies the four physical rings.
/// assert_eq!(result.partition.sizes(), vec![6, 6, 6, 6]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TabuSearch {
    /// Tuning parameters.
    pub params: TabuParams,
}

impl TabuSearch {
    /// Mapper with the paper's parameters.
    pub fn new(params: TabuParams) -> Self {
        Self { params }
    }

    /// Run the search and also return the iteration trace (Figure 1).
    ///
    /// # Panics
    /// Panics if `sizes` is not a valid cluster-size vector for the table.
    pub fn search_traced(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        rng: &mut dyn RngCore,
    ) -> (SearchResult, TabuTrace) {
        self.search_objective(table.n(), sizes, rng, |start| {
            SwapEvaluator::new(start, table)
        })
    }

    /// Run the search against the weighted similarity function (per-
    /// application traffic weights — the paper's future-work setting).
    ///
    /// # Panics
    /// Panics on invalid sizes, a weight-count mismatch, or non-positive
    /// weights.
    pub fn search_weighted(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        weights: &[f64],
        rng: &mut dyn RngCore,
    ) -> (SearchResult, TabuTrace) {
        self.search_objective(table.n(), sizes, rng, |start| {
            WeightedSwapEvaluator::new(start, table, weights.to_vec())
        })
    }

    /// Generic driver: run the multi-seed tabu protocol against any
    /// [`SwapObjective`], built per seed from a random starting partition.
    ///
    /// The restarts run on the crate's scoped worker pool
    /// ([`crate::pool::run_indexed`]; `params.threads` workers, 0 = one
    /// per CPU). All starting partitions are drawn from `rng` up front —
    /// the same stream a serial loop would consume — and each seed records
    /// a private trace that is merged by seed index with cumulative
    /// iteration offsets, so the result and trace are identical for every
    /// thread count.
    ///
    /// # Panics
    /// Panics if `sizes` is not a valid cluster-size vector for `n`.
    pub fn search_objective<O, F>(
        &self,
        n: usize,
        sizes: &[usize],
        rng: &mut dyn RngCore,
        make_objective: F,
    ) -> (SearchResult, TabuTrace)
    where
        O: SwapObjective + Send,
        F: Fn(Partition) -> O + Sync,
    {
        assert!(
            check_sizes(n, sizes),
            "invalid cluster sizes {sizes:?} for {n} switches"
        );
        let _span = telemetry::Span::enter("tabu.search");
        // The seed runs themselves consume no randomness, so drawing every
        // start here preserves the exact RNG stream of a serial loop. A warm
        // start replaces the first restart and draws nothing from `rng`.
        let mut starts: Vec<Partition> = Vec::with_capacity(self.params.seeds.max(1));
        if let Some(warm) = &self.params.warm_start {
            assert_eq!(
                warm.num_switches(),
                n,
                "warm-start partition has the wrong switch count"
            );
            assert_eq!(
                warm.sizes(),
                sizes,
                "warm-start partition has the wrong cluster sizes"
            );
            starts.push(warm.clone());
        }
        while starts.len() < self.params.seeds {
            starts.push(
                Partition::random(n, sizes, rng)
                    .expect("validated sizes always produce a partition"),
            );
        }

        type SeedOutcome = ((f64, Partition), u64, TabuTrace, usize);
        let per_seed: Vec<SeedOutcome> =
            crate::pool::run_indexed(starts.len(), self.params.threads, |seed_idx| {
                let mut trace = TabuTrace::default();
                let mut local_iter = 0usize;
                let (seed_best, seed_evals) = self.run_seed(
                    make_objective(starts[seed_idx].clone()),
                    seed_idx,
                    &mut local_iter,
                    &mut trace,
                );
                (seed_best, seed_evals, trace, local_iter)
            });

        let mut trace = TabuTrace::default();
        let mut best: Option<(f64, Partition)> = None;
        let mut evaluations = 0u64;
        let mut offset = 0usize;
        for (seed_best, seed_evals, seed_trace, seed_iters) in per_seed {
            trace
                .events
                .extend(seed_trace.events.iter().map(|e| TraceEvent {
                    iteration: offset + e.iteration,
                    ..*e
                }));
            offset += seed_iters;
            evaluations += seed_evals;
            if best.as_ref().is_none_or(|(f, _)| seed_best.0 < *f) {
                best = Some(seed_best);
            }
        }

        let m = tabu_metrics();
        m.restarts.add(starts.len() as u64);
        m.iterations.add(offset as u64);
        m.evaluations.add(evaluations);
        // When tracing is armed, replay the merged F_G trajectory (the
        // Figure-1 series) as point events — bounded by the iteration
        // budget, and free when tracing is off.
        if telemetry::tracing_enabled() {
            for e in &trace.events {
                let name = if e.is_seed_start {
                    "tabu.seed_start"
                } else {
                    "tabu.fg"
                };
                telemetry::trace::instant(name, Some(e.fg));
            }
        }

        let (fg, partition) = best.expect("at least one seed");
        (
            SearchResult {
                partition,
                fg,
                evaluations,
            },
            trace,
        )
    }

    /// Run one seed; returns the best local minimum `(value, partition)`
    /// and the evaluation count.
    fn run_seed<O: SwapObjective>(
        &self,
        mut eval: O,
        seed_idx: usize,
        global_iter: &mut usize,
        trace: &mut TabuTrace,
    ) -> ((f64, Partition), u64) {
        const EPS: f64 = 1e-12;
        let mut evaluations = 0u64;
        trace.events.push(TraceEvent {
            iteration: *global_iter,
            seed: seed_idx,
            fg: eval.value(),
            is_seed_start: true,
        });

        // Tabu list: forbidden swap -> first iteration it is allowed again.
        let mut tabu: HashMap<(SwitchId, SwitchId), usize> = HashMap::new();
        // Local minima seen this seed: (value, hit count).
        let mut minima: Vec<(f64, usize)> = Vec::new();
        let mut seed_best: (f64, Partition) = (eval.value(), eval.partition().clone());
        let mut iterations = 0usize;

        let n = eval.partition().num_switches();
        loop {
            // Scan all cross-cluster swaps.
            let mut best_any: Option<(f64, SwitchId, SwitchId)> = None;
            let mut best_allowed: Option<(f64, SwitchId, SwitchId)> = None;
            for a in 0..n {
                for b in (a + 1)..n {
                    if eval.partition().cluster_of(a) == eval.partition().cluster_of(b) {
                        continue;
                    }
                    let delta = eval.delta(a, b);
                    evaluations += 1;
                    if best_any.is_none_or(|(d, _, _)| delta < d) {
                        best_any = Some((delta, a, b));
                    }
                    let is_tabu = tabu.get(&(a, b)).is_some_and(|&until| iterations < until);
                    if !is_tabu && best_allowed.is_none_or(|(d, _, _)| delta < d) {
                        best_allowed = Some((delta, a, b));
                    }
                }
            }
            let Some((best_delta_any, _, _)) = best_any else {
                // Degenerate: a single cluster, nothing to swap.
                break;
            };

            let at_local_min = best_delta_any >= -EPS;
            if at_local_min {
                // Record this local minimum.
                let fg = eval.value();
                if fg < seed_best.0 {
                    seed_best = (fg, eval.partition().clone());
                }
                let hits = match minima.iter_mut().find(|(v, _)| (*v - fg).abs() <= 1e-9) {
                    Some((_, count)) => {
                        *count += 1;
                        *count
                    }
                    None => {
                        minima.push((fg, 1));
                        1
                    }
                };
                if hits >= self.params.local_min_repeats {
                    break;
                }
                if iterations >= self.params.max_iterations {
                    break;
                }
                // Escape: smallest-increase non-tabu move; forbid its
                // inverse for `tenure` iterations.
                let Some((_, a, b)) = best_allowed else {
                    break; // everything tabu: give up this seed
                };
                eval.apply(a, b);
                tabu.insert((a, b), iterations + 1 + self.params.tenure);
            } else {
                // Greedy improving move. Improving moves respect the tabu
                // list too; if the list blocks every improving move, fall
                // back to the raw best (which may be the blocked one — the
                // aspiration-by-default of taking a strictly improving step
                // can never re-enter a visited local minimum cycle).
                let (_, a, b) = best_allowed
                    .filter(|&(d, _, _)| d < -EPS)
                    .or(best_any)
                    .expect("best_any is Some here");
                eval.apply(a, b);
            }

            iterations += 1;
            *global_iter += 1;
            trace.events.push(TraceEvent {
                iteration: *global_iter,
                seed: seed_idx,
                fg: eval.value(),
                is_seed_start: false,
            });
            // Hard stop even if still descending: the budget is the budget.
            if iterations >= self.params.max_iterations + self.params.tenure * 4 {
                let fg = eval.value();
                if fg < seed_best.0 {
                    seed_best = (fg, eval.partition().clone());
                }
                break;
            }
        }
        // Account for the final state.
        let fg = eval.value();
        if fg < seed_best.0 {
            seed_best = (fg, eval.into_partition());
        }
        (seed_best, evaluations)
    }
}

impl Mapper for TabuSearch {
    fn name(&self) -> &'static str {
        "tabu"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        rng: &mut dyn RngCore,
    ) -> SearchResult {
        self.search_traced(table, sizes, rng).0
    }
}

/// Convenience: run the paper-configured tabu search with a fixed seed.
pub fn tabu_map(table: &DistanceTable, sizes: &[usize], seed: u64) -> SearchResult {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TabuSearch::default().search(table, sizes, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, dumbbell_truth, rings_table};
    use commsched_core::similarity_fg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_dumbbell_clusters() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(1);
        let res = TabuSearch::default().search(&table, &[4, 4], &mut rng);
        assert!(res.partition.same_grouping(&dumbbell_truth()));
    }

    #[test]
    fn finds_the_four_rings() {
        // The Figure-4 experiment: tabu identifies the designed topology.
        let table = rings_table();
        let mut rng = StdRng::seed_from_u64(2);
        let res = TabuSearch::new(TabuParams::scaled(24)).search(&table, &[6, 6, 6, 6], &mut rng);
        let truth = commsched_core::Partition::from_clusters(
            &commsched_topology::designed::ring_of_rings_clusters(4, 6),
        )
        .unwrap();
        assert!(
            res.partition.same_grouping(&truth),
            "got {} (fg {}), want {} (fg {})",
            res.partition,
            res.fg,
            truth,
            similarity_fg(&truth, &table)
        );
    }

    #[test]
    fn result_fg_is_consistent() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(3);
        let res = TabuSearch::default().search(&table, &[4, 4], &mut rng);
        let direct = similarity_fg(&res.partition, &table);
        assert!((res.fg - direct).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let table = rings_table();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            TabuSearch::default().search(&table, &[6, 6, 6, 6], &mut rng)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn trace_has_one_start_per_seed() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(5);
        let params = TabuParams {
            seeds: 4,
            ..TabuParams::default()
        };
        let (res, trace) = TabuSearch::new(params).search_traced(&table, &[4, 4], &mut rng);
        assert_eq!(trace.seed_starts().count(), 4);
        // The reported minimum equals the trace minimum.
        assert!((trace.min_fg().unwrap() - res.fg).abs() < 1e-9);
        // Iterations increase monotonically.
        for w in trace.events.windows(2) {
            assert!(w[1].iteration >= w[0].iteration);
        }
    }

    #[test]
    fn trace_descends_quickly_after_start() {
        // Figure 1's qualitative shape: F decreases in the first few
        // iterations after each starting point.
        let table = rings_table();
        let mut rng = StdRng::seed_from_u64(11);
        let (_, trace) = TabuSearch::default().search_traced(&table, &[6, 6, 6, 6], &mut rng);
        for (i, e) in trace.events.iter().enumerate() {
            if e.is_seed_start {
                if let Some(next) = trace.events.get(i + 1) {
                    if !next.is_seed_start {
                        assert!(next.fg <= e.fg + 1e-12, "first move must not be uphill");
                    }
                }
            }
        }
    }

    #[test]
    fn single_cluster_degenerate() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(1);
        let res = TabuSearch::default().search(&table, &[8], &mut rng);
        // Only one possible partition; F_G = 1 by Eq. 2.
        assert!((res.fg - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid cluster sizes")]
    fn invalid_sizes_panic() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = TabuSearch::default().search(&table, &[3, 3], &mut rng);
    }

    #[test]
    fn uphill_moves_are_tabu_guarded() {
        // Run long enough that escapes happen; the search must terminate
        // (no infinite 2-cycle thanks to the tabu list).
        let table = rings_table();
        let params = TabuParams {
            seeds: 2,
            max_iterations: 40,
            local_min_repeats: 3,
            tenure: 4,
            threads: 2,
            warm_start: None,
        };
        let mut rng = StdRng::seed_from_u64(13);
        let (res, trace) = TabuSearch::new(params).search_traced(&table, &[6, 6, 6, 6], &mut rng);
        assert!(res.fg.is_finite());
        assert!(!trace.events.is_empty());
    }

    #[test]
    fn parallel_restarts_match_serial_exactly() {
        // Result, evaluation count AND trace must be invariant under the
        // restart thread count.
        let table = rings_table();
        let run = |threads| {
            let mut rng = StdRng::seed_from_u64(17);
            let params = TabuParams {
                threads,
                ..TabuParams::default()
            };
            TabuSearch::new(params).search_traced(&table, &[6, 6, 6, 6], &mut rng)
        };
        let (r1, t1) = run(1);
        for threads in [2, 7, 64] {
            let (r, t) = run(threads);
            assert_eq!(r1.partition, r.partition, "threads = {threads}");
            assert_eq!(r1.evaluations, r.evaluations, "threads = {threads}");
            assert!((r1.fg - r.fg).abs() == 0.0, "threads = {threads}");
            assert_eq!(t1.events, t.events, "threads = {threads}");
        }
    }

    #[test]
    fn weighted_search_places_heavy_app_tightest() {
        use commsched_core::{cluster_similarity, weighted_similarity_fg};
        let table = rings_table();
        // Application 0 has 20x the traffic of the others.
        let weights = [20.0, 1.0, 1.0, 1.0];
        let params = TabuParams::scaled(24);
        let mut rng = StdRng::seed_from_u64(3);
        let (res, _) =
            TabuSearch::new(params).search_weighted(&table, &[6, 6, 6, 6], &weights, &mut rng);
        // Consistency with the direct weighted formula.
        let direct = weighted_similarity_fg(&res.partition, &table, &weights);
        assert!((res.fg - direct).abs() < 1e-9);
        // The heavy application's cluster must be the tightest one (or tied).
        let clusters = res.partition.clusters();
        let cost0 = cluster_similarity(&clusters[0], &table);
        for members in &clusters[1..] {
            assert!(cost0 <= cluster_similarity(members, &table) + 1e-9);
        }
    }

    #[test]
    fn weighted_search_with_uniform_weights_matches_unweighted() {
        let table = dumbbell_table();
        let params = TabuParams::default();
        let mut rng = StdRng::seed_from_u64(9);
        let (w, _) =
            TabuSearch::new(params.clone()).search_weighted(&table, &[4, 4], &[2.0, 2.0], &mut rng);
        let mut rng = StdRng::seed_from_u64(9);
        let u = TabuSearch::new(params).search(&table, &[4, 4], &mut rng);
        assert_eq!(w.partition, u.partition);
        assert!((w.fg - u.fg).abs() < 1e-9);
    }

    #[test]
    fn warm_start_replaces_first_restart_only() {
        let table = rings_table();
        let sizes = [6usize, 6, 6, 6];
        let truth = commsched_core::Partition::from_clusters(
            &commsched_topology::designed::ring_of_rings_clusters(4, 6),
        )
        .unwrap();
        let cold_params = TabuParams {
            seeds: 4,
            ..TabuParams::default()
        };
        let mut rng = StdRng::seed_from_u64(23);
        let (_, cold_trace) =
            TabuSearch::new(cold_params.clone()).search_traced(&table, &sizes, &mut rng);
        let warm_params = cold_params.warm_start(truth.clone());
        let mut rng = StdRng::seed_from_u64(23);
        let (warm_res, warm_trace) =
            TabuSearch::new(warm_params).search_traced(&table, &sizes, &mut rng);
        let warm_starts: Vec<f64> = warm_trace.seed_starts().map(|e| e.fg).collect();
        let cold_starts: Vec<f64> = cold_trace.seed_starts().map(|e| e.fg).collect();
        assert_eq!(warm_starts.len(), 4);
        // Restart 0 begins at the warm mapping's F_G ...
        let warm_fg = similarity_fg(&truth, &table);
        assert!((warm_starts[0] - warm_fg).abs() < 1e-12);
        // ... and the remaining restarts consume the same RNG stream a
        // cold run's first three seeds would (bitwise).
        assert_eq!(&warm_starts[1..], &cold_starts[..3]);
        // Seeding from the optimum can never end worse than it.
        assert!(warm_res.fg <= warm_fg + 1e-12);
    }

    #[test]
    fn warm_start_alone_needs_no_rng_draws() {
        let table = dumbbell_table();
        let params = TabuParams {
            seeds: 1,
            ..TabuParams::default()
        }
        .warm_start(dumbbell_truth());
        let mut rng = StdRng::seed_from_u64(0);
        let before = rng.next_u64();
        let mut rng = StdRng::seed_from_u64(0);
        let res = TabuSearch::new(params).search(&table, &[4, 4], &mut rng);
        assert!(res.partition.same_grouping(&dumbbell_truth()));
        // The stream was untouched: the next draw is the first draw.
        assert_eq!(rng.next_u64(), before);
    }

    #[test]
    #[should_panic(expected = "warm-start partition has the wrong cluster sizes")]
    fn warm_start_size_mismatch_panics() {
        let table = dumbbell_table();
        let params = TabuParams::default().warm_start(dumbbell_truth());
        let mut rng = StdRng::seed_from_u64(1);
        // The warm partition is (4, 4); asking for (2, 6) must panic.
        let _ = TabuSearch::new(params)
            .search_objective(8, &[2, 6], &mut rng, |p| SwapEvaluator::new(p, &table));
    }

    #[test]
    fn tabu_map_convenience() {
        let table = dumbbell_table();
        let res = tabu_map(&table, &[4, 4], 42);
        assert!(res.partition.same_grouping(&dumbbell_truth()));
        assert!(res.evaluations > 0);
    }
}
