//! Simulated annealing (§2's second comparison heuristic).
//!
//! Considers one mapping at a time; a random cross-cluster swap is always
//! accepted when it improves `F_G` and accepted with probability
//! `exp(-Δ/T)` otherwise, with geometric cooling of the temperature `T`.

use crate::{check_sizes, Mapper, SearchResult};
use commsched_core::{Partition, SwapEvaluator};
use commsched_distance::DistanceTable;
use rand::{Rng, RngCore};

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealingParams {
    /// Initial temperature, as a multiple of the starting `F_G` (scale-free
    /// across tables).
    pub initial_temp_factor: f64,
    /// Geometric cooling rate per step (`T ← rate · T`).
    pub cooling: f64,
    /// Proposal steps.
    pub steps: usize,
    /// Independent restarts.
    pub restarts: usize,
}

impl Default for SimulatedAnnealingParams {
    fn default() -> Self {
        Self {
            initial_temp_factor: 0.5,
            cooling: 0.995,
            steps: 2000,
            restarts: 3,
        }
    }
}

/// The simulated-annealing mapper.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatedAnnealing {
    /// Schedule parameters.
    pub params: SimulatedAnnealingParams,
}

impl SimulatedAnnealing {
    /// Mapper with custom parameters.
    pub fn new(params: SimulatedAnnealingParams) -> Self {
        Self { params }
    }
}

impl Mapper for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        rng: &mut dyn RngCore,
    ) -> SearchResult {
        assert!(check_sizes(table.n(), sizes), "invalid cluster sizes");
        let n = table.n();
        let mut best: Option<(f64, Partition)> = None;
        let mut evaluations = 0u64;
        for _ in 0..self.params.restarts.max(1) {
            let start = Partition::random(n, sizes, rng).expect("validated sizes");
            let mut eval = SwapEvaluator::new(start, table);
            let mut temp = (eval.fg() * self.params.initial_temp_factor).max(1e-6);
            let mut local_best = (eval.fg(), eval.partition().clone());
            for _ in 0..self.params.steps {
                // Propose a random cross-cluster swap.
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if eval.partition().cluster_of(a) == eval.partition().cluster_of(b) {
                    temp *= self.params.cooling;
                    continue;
                }
                let delta = eval.delta_fg(a, b);
                evaluations += 1;
                let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
                if accept {
                    eval.apply_swap(a, b);
                    let fg = eval.fg();
                    if fg < local_best.0 {
                        local_best = (fg, eval.partition().clone());
                    }
                }
                temp *= self.params.cooling;
            }
            if best.as_ref().is_none_or(|(f, _)| local_best.0 < *f) {
                best = Some(local_best);
            }
        }
        let (fg, partition) = best.expect("at least one restart");
        SearchResult {
            partition,
            fg,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, dumbbell_truth};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_dumbbell_clusters() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(21);
        let res = SimulatedAnnealing::default().search(&table, &[4, 4], &mut rng);
        assert!(
            res.partition.same_grouping(&dumbbell_truth()),
            "got {} with fg {}",
            res.partition,
            res.fg
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let table = dumbbell_table();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            SimulatedAnnealing::default().search(&table, &[4, 4], &mut rng)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn best_tracked_not_final_state() {
        // With a hot schedule the final state may be uphill from the best;
        // the result must report the best-seen, which is consistent with
        // its own partition.
        let table = dumbbell_table();
        let params = SimulatedAnnealingParams {
            initial_temp_factor: 5.0,
            cooling: 1.0, // never cools: pure random walk
            steps: 300,
            restarts: 1,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let res = SimulatedAnnealing::new(params).search(&table, &[4, 4], &mut rng);
        let direct = commsched_core::similarity_fg(&res.partition, &table);
        assert!((res.fg - direct).abs() < 1e-9);
    }

    #[test]
    fn zero_steps_returns_start() {
        let table = dumbbell_table();
        let params = SimulatedAnnealingParams {
            steps: 0,
            restarts: 1,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let res = SimulatedAnnealing::new(params).search(&table, &[4, 4], &mut rng);
        assert_eq!(res.evaluations, 0);
        assert!(res.fg.is_finite());
    }
}
