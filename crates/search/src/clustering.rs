//! Classical agglomerative clustering as a mapping baseline.
//!
//! §3 of the paper notes that because the table of equivalent distances is
//! not a metric, "we cannot use classical clustering methods based on
//! Euclidean metric distances". This module implements the closest
//! classical analogue anyway — size-constrained average-linkage
//! agglomerative clustering on the (squared) table entries — so the claim
//! can be tested empirically rather than taken on faith: the ablation
//! harness compares it against the tabu search.
//!
//! The algorithm: start from singletons; repeatedly merge the pair of
//! clusters with the smallest average squared distance whose combined size
//! still fits under the largest requested cluster size; stop at the
//! requested cluster count; then repair sizes by greedily moving the
//! cheapest switches from oversized to undersized clusters.

use crate::{check_sizes, Mapper, SearchResult};
use commsched_core::{similarity_fg, Partition};
use commsched_distance::DistanceTable;
use commsched_topology::SwitchId;
use rand::RngCore;

/// Size-constrained average-linkage agglomerative clustering.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgglomerativeClustering;

/// Average squared distance between two clusters.
fn avg_link(a: &[SwitchId], b: &[SwitchId], table: &DistanceTable) -> f64 {
    let mut acc = 0.0;
    for &x in a {
        for &y in b {
            acc += table.get_sq(x, y);
        }
    }
    acc / (a.len() * b.len()) as f64
}

impl Mapper for AgglomerativeClustering {
    fn name(&self) -> &'static str {
        "agglomerative"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        _rng: &mut dyn RngCore,
    ) -> SearchResult {
        assert!(check_sizes(table.n(), sizes), "invalid cluster sizes");
        let n = table.n();
        let m = sizes.len();
        let max_size = *sizes.iter().max().expect("non-empty sizes");
        let mut clusters: Vec<Vec<SwitchId>> = (0..n).map(|s| vec![s]).collect();
        let mut evaluations = 0u64;

        // Agglomerate down to m clusters.
        while clusters.len() > m {
            let mut best: Option<(f64, usize, usize)> = None;
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    if clusters[i].len() + clusters[j].len() > max_size {
                        continue;
                    }
                    let d = avg_link(&clusters[i], &clusters[j], table);
                    evaluations += 1;
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, i, j));
                    }
                }
            }
            let Some((_, i, j)) = best else {
                // No merge fits under max_size: force-merge the two
                // smallest clusters (repair fixes sizes later).
                let mut order: Vec<usize> = (0..clusters.len()).collect();
                order.sort_by_key(|&c| clusters[c].len());
                let (i, j) = (order[0].min(order[1]), order[0].max(order[1]));
                let merged = clusters.remove(j);
                clusters[i].extend(merged);
                continue;
            };
            let merged = clusters.remove(j);
            clusters[i].extend(merged);
        }

        // Assign cluster labels so that sizes match the request as closely
        // as possible: sort both by size, pair them up.
        let mut want: Vec<(usize, usize)> = sizes.iter().copied().enumerate().collect();
        want.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
        let mut have: Vec<usize> = (0..clusters.len()).collect();
        have.sort_by_key(|&c| std::cmp::Reverse(clusters[c].len()));
        let mut final_clusters: Vec<Vec<SwitchId>> = vec![Vec::new(); m];
        for (&(label, _), &c) in want.iter().zip(&have) {
            final_clusters[label] = clusters[c].clone();
        }

        // Size repair: move the cheapest-to-move switch from an oversized
        // cluster to the undersized cluster where it attaches best.
        loop {
            let over = (0..m).find(|&c| final_clusters[c].len() > sizes[c]);
            let Some(over) = over else { break };
            let under = (0..m)
                .find(|&c| final_clusters[c].len() < sizes[c])
                .expect("totals match");
            // Pick the member of `over` with the cheapest attachment to
            // `under` (ties toward the lowest id for determinism).
            let (pos, _) = final_clusters[over]
                .iter()
                .enumerate()
                .map(|(pos, &s)| {
                    let attach: f64 = final_clusters[under]
                        .iter()
                        .map(|&u| table.get_sq(s, u))
                        .sum();
                    evaluations += 1;
                    (pos, attach)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("oversized cluster non-empty");
            let s = final_clusters[over].remove(pos);
            final_clusters[under].push(s);
        }

        let partition = Partition::from_clusters(&final_clusters)
            .expect("repair produces a full valid partition");
        let fg = similarity_fg(&partition, table);
        SearchResult {
            partition,
            fg,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, dumbbell_truth, rings_table};
    use crate::TabuSearch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clusters_the_obvious_dumbbell() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(0);
        let res = AgglomerativeClustering.search(&table, &[4, 4], &mut rng);
        assert!(res.partition.same_grouping(&dumbbell_truth()));
    }

    #[test]
    fn sizes_always_respected() {
        let table = rings_table();
        let mut rng = StdRng::seed_from_u64(0);
        for sizes in [vec![6usize, 6, 6, 6], vec![12, 6, 6], vec![20, 2, 2]] {
            let res = AgglomerativeClustering.search(&table, &sizes, &mut rng);
            assert_eq!(res.partition.sizes(), sizes);
            let direct = similarity_fg(&res.partition, &table);
            assert!((res.fg - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn never_beats_tabu_on_the_paper_networks() {
        // The §3 claim, tested: classical clustering on the non-metric
        // table is at best as good as the tabu search, typically worse.
        let table = rings_table();
        let mut rng = StdRng::seed_from_u64(0);
        let agg = AgglomerativeClustering.search(&table, &[6, 6, 6, 6], &mut rng);
        let mut rng = StdRng::seed_from_u64(0);
        let tabu =
            TabuSearch::new(crate::TabuParams::scaled(24)).search(&table, &[6, 6, 6, 6], &mut rng);
        assert!(
            agg.fg >= tabu.fg - 1e-9,
            "agglomerative {} vs tabu {}",
            agg.fg,
            tabu.fg
        );
    }

    #[test]
    fn deterministic() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(0);
        let a = AgglomerativeClustering.search(&table, &[4, 4], &mut rng);
        let b = AgglomerativeClustering.search(&table, &[4, 4], &mut rng);
        assert_eq!(a.partition, b.partition);
    }
}
