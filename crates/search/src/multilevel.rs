//! Multilevel mapping: coarsen → map → refine (tentpole of the scale
//! work).
//!
//! The paper's tabu search evaluates `O(N²)` swaps per iteration with a
//! budget of `3N` iterations per seed — prohibitive beyond a few hundred
//! switches. The multilevel pipeline makes `N = 4096+` tractable:
//!
//! 1. **Coarsen** ([`crate::coarsen`]): contract distance-similar switch
//!    pairs level by level until the graph fits the flat solver
//!    (`max_coarse_n`). The coarse table is exact for coarse-respecting
//!    partitions, so no modeling error enters here.
//! 2. **Map**: run the existing deterministic parallel tabu search on the
//!    coarsest graph (the only stage that consumes randomness).
//! 3. **Uncoarsen + refine**: project the mapping down one level at a
//!    time and run a bounded-neighborhood swap search at each level —
//!    each vertex only considers its `refine_candidates` nearest
//!    neighbors, so a refinement round costs `O(N·K)` deltas instead of
//!    the flat search's `O(N²)`.
//!
//! # Determinism
//!
//! The coarse tabu already returns bit-identical results for every thread
//! count (index-ordered merge of independent seeds). Refinement keeps the
//! property with a *frozen-scan / serial-apply* discipline: each round
//! first scans all active vertices in parallel against an **immutable**
//! evaluator snapshot (pure reads, results merged in vertex order by
//! [`crate::pool::run_indexed`]), then applies the proposed swaps
//! serially in ascending vertex order, re-checking each delta against the
//! now-mutating state. No stage's output depends on thread scheduling.

use crate::coarsen::{build_hierarchy, Hierarchy};
use crate::tabu::{TabuParams, TabuSearch};
use crate::{check_sizes, Mapper, SearchResult};
use commsched_core::{Partition, SwapEvaluator};
use commsched_distance::DistanceTable;
use commsched_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::OnceLock;

/// Which mapping pipeline a caller wants: the paper's flat search or the
/// multilevel pipeline. Parsed from job specs and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MapStrategy {
    /// Flat multi-seed tabu search on the full table (the paper's method).
    #[default]
    Flat,
    /// Coarsen → map → refine (this module).
    Multilevel,
}

impl std::fmt::Display for MapStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MapStrategy::Flat => "flat",
            MapStrategy::Multilevel => "multilevel",
        })
    }
}

impl std::str::FromStr for MapStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flat" => Ok(MapStrategy::Flat),
            "multilevel" => Ok(MapStrategy::Multilevel),
            other => Err(format!("unknown strategy '{other}' (flat|multilevel)")),
        }
    }
}

/// Telemetry handles for the multilevel driver, resolved once per process.
struct MlMetrics {
    runs: telemetry::Counter,
    levels: telemetry::Counter,
    refine_moves: telemetry::Counter,
}

fn ml_metrics() -> &'static MlMetrics {
    static METRICS: OnceLock<MlMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = telemetry::global();
        MlMetrics {
            runs: r.counter("ml_runs_total", "Multilevel mapping pipelines run"),
            levels: r.counter(
                "ml_levels_total",
                "Coarsening levels built across all multilevel runs",
            ),
            refine_moves: r.counter(
                "ml_refine_moves_total",
                "Improving swaps applied during uncoarsening refinement",
            ),
        }
    })
}

/// Tuning parameters of the multilevel pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultilevelParams {
    /// Stop coarsening once the graph has at most this many nodes; the
    /// flat tabu search solves the coarsest level.
    pub max_coarse_n: usize,
    /// Parameters for the coarse tabu search. `max_iterations` is
    /// re-scaled to the coarsest node count at run time; `threads` is
    /// overridden by [`MultilevelParams::threads`].
    pub tabu: TabuParams,
    /// Refinement rounds per level during uncoarsening.
    pub refine_rounds: usize,
    /// Nearest-neighbor candidates each vertex considers per round.
    pub refine_candidates: usize,
    /// Worker threads for the coarse search and the refinement scans
    /// (0 = one per available CPU). Results are identical for every
    /// thread count.
    pub threads: usize,
}

impl Default for MultilevelParams {
    fn default() -> Self {
        Self {
            max_coarse_n: 256,
            tabu: TabuParams::default(),
            refine_rounds: 8,
            refine_candidates: 32,
            threads: 0,
        }
    }
}

/// Observability of one multilevel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MultilevelStats {
    /// Coarsening levels built (0 = the flat solver ran directly).
    pub levels: usize,
    /// Node count of the coarsest graph handed to the tabu search.
    pub coarse_n: usize,
    /// Improving swaps applied during refinement.
    pub refine_moves: u64,
}

const EPS: f64 = 1e-12;

/// One improving-swap proposal from the frozen scan: `(delta_fg, v, u)`.
type Proposal = (f64, usize, usize);

/// Run the full coarsen → map → refine pipeline.
///
/// Deterministic: the only randomness is the coarse tabu's restarts,
/// seeded from `seed`, and every parallel stage merges in index order —
/// the result is bit-identical for any `params.threads`.
///
/// # Panics
/// Panics if `sizes` is not a valid cluster-size vector for `table.n()`.
pub fn multilevel_map(
    table: &DistanceTable,
    sizes: &[usize],
    seed: u64,
    params: &MultilevelParams,
) -> (SearchResult, MultilevelStats) {
    assert!(check_sizes(table.n(), sizes), "invalid cluster sizes");
    let metrics = ml_metrics();
    metrics.runs.inc();

    let hierarchy = build_hierarchy(table, sizes, params.max_coarse_n.max(2));
    let (coarse_table, coarse_sizes) = hierarchy.coarsest().unwrap_or((table, sizes));
    metrics.levels.add(hierarchy.levels.len() as u64);

    let tabu = TabuSearch::new(TabuParams {
        max_iterations: (3 * coarse_table.n()).max(20),
        threads: params.threads,
        ..params.tabu.clone()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let coarse = tabu.search(coarse_table, coarse_sizes, &mut rng);

    let mut stats = MultilevelStats {
        levels: hierarchy.levels.len(),
        coarse_n: coarse_table.n(),
        refine_moves: 0,
    };
    let mut evaluations = coarse.evaluations;

    if hierarchy.levels.is_empty() {
        return (coarse, stats);
    }

    let (partition, fg) = uncoarsen(
        table,
        &hierarchy,
        coarse.partition,
        params,
        &mut stats,
        &mut evaluations,
    );
    metrics.refine_moves.add(stats.refine_moves);
    (
        SearchResult {
            partition,
            fg,
            evaluations,
        },
        stats,
    )
}

/// Project the coarsest mapping back to the finest level, refining at
/// each step.
fn uncoarsen(
    finest: &DistanceTable,
    hierarchy: &Hierarchy,
    coarsest: Partition,
    params: &MultilevelParams,
    stats: &mut MultilevelStats,
    evaluations: &mut u64,
) -> (Partition, f64) {
    let mut current = coarsest;
    let mut fg = 0.0;
    for k in (0..hierarchy.levels.len()).rev() {
        let level = &hierarchy.levels[k];
        let fine_table = if k == 0 {
            finest
        } else {
            &hierarchy.levels[k - 1].table
        };
        let assign: Vec<usize> = level.map.iter().map(|&c| current.cluster_of(c)).collect();
        let projected =
            Partition::new(assign, current.num_clusters()).expect("projection preserves validity");
        let refined = refine_level(fine_table, projected, params, stats, evaluations);
        current = refined.0;
        fg = refined.1;
    }
    (current, fg)
}

/// Bounded-neighborhood refinement at one level: repeated frozen-scan /
/// serial-apply rounds over each vertex's nearest-neighbor candidates.
fn refine_level(
    table: &DistanceTable,
    partition: Partition,
    params: &MultilevelParams,
    stats: &mut MultilevelStats,
    evaluations: &mut u64,
) -> (Partition, f64) {
    let n = table.n();
    let k = params.refine_candidates.min(n.saturating_sub(1));
    let candidates = nearest_candidates(table, k, params.threads);
    let mut eval = SwapEvaluator::new(partition, table);
    let mut active = vec![true; n];
    for _ in 0..params.refine_rounds {
        let verts: Vec<usize> = (0..n).filter(|&v| active[v]).collect();
        if verts.is_empty() {
            break;
        }
        // Frozen scan: pure reads of the shared evaluator; run_indexed
        // merges the per-vertex results in index order, so the proposal
        // list is independent of the thread count.
        let proposals: Vec<(u64, Option<Proposal>)> = {
            let eval_ref = &eval;
            let cand_ref = &candidates;
            let verts_ref = &verts;
            crate::pool::run_indexed(verts.len(), params.threads, move |idx| {
                let v = verts_ref[idx];
                let mut scanned = 0u64;
                let mut best: Option<Proposal> = None;
                for &u in &cand_ref[v] {
                    if eval_ref.partition().cluster_of(v) == eval_ref.partition().cluster_of(u) {
                        continue;
                    }
                    let d = eval_ref.delta_fg(v, u);
                    scanned += 1;
                    if d < -EPS && best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, v, u));
                    }
                }
                (scanned, best)
            })
        };
        // Serial apply in ascending vertex order, re-checking each delta
        // against the state the earlier applies produced.
        let mut moved = vec![false; n];
        let mut applied = 0u64;
        for (scanned, proposal) in proposals {
            *evaluations += scanned;
            let Some((_, v, u)) = proposal else { continue };
            if eval.partition().cluster_of(v) == eval.partition().cluster_of(u) {
                continue;
            }
            let d = eval.delta_fg(v, u);
            *evaluations += 1;
            if d < -EPS {
                eval.apply_swap(v, u);
                moved[v] = true;
                moved[u] = true;
                applied += 1;
            }
        }
        stats.refine_moves += applied;
        if applied == 0 {
            break;
        }
        // Next round only revisits vertices whose neighborhood changed.
        for v in 0..n {
            active[v] = moved[v] || candidates[v].iter().any(|&u| moved[u]);
        }
    }
    let fg = eval.fg();
    (eval.into_partition(), fg)
}

/// For each vertex, its `k` nearest other vertices by table distance
/// (ties toward the lower index). Computed in parallel; deterministic.
fn nearest_candidates(table: &DistanceTable, k: usize, threads: usize) -> Vec<Vec<usize>> {
    let n = table.n();
    crate::pool::run_indexed(n, threads, move |v| {
        let row = table.row(v);
        let mut order: Vec<usize> = (0..n).filter(|&u| u != v).collect();
        if k < order.len() {
            order.select_nth_unstable_by(k, |&a, &b| row[a].total_cmp(&row[b]).then(a.cmp(&b)));
            order.truncate(k);
        }
        order.sort_unstable_by(|&a, &b| row[a].total_cmp(&row[b]).then(a.cmp(&b)));
        order
    })
}

/// [`Mapper`] adapter: draws one seed from the caller's RNG and runs the
/// pipeline.
#[derive(Debug, Clone, Default)]
pub struct MultilevelMapper {
    /// Pipeline tuning.
    pub params: MultilevelParams,
}

impl Mapper for MultilevelMapper {
    fn name(&self) -> &'static str {
        "multilevel"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        rng: &mut dyn RngCore,
    ) -> SearchResult {
        let seed = rng.next_u64();
        multilevel_map(table, sizes, seed, &self.params).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, dumbbell_truth, rings_table};

    fn small_params(max_coarse_n: usize, threads: usize) -> MultilevelParams {
        MultilevelParams {
            max_coarse_n,
            threads,
            ..MultilevelParams::default()
        }
    }

    #[test]
    fn recovers_dumbbell_optimum_through_the_hierarchy() {
        let table = dumbbell_table();
        // max_coarse_n = 2 forces two contraction levels on 8 nodes.
        let (result, stats) = multilevel_map(&table, &[4, 4], 42, &small_params(2, 1));
        assert_eq!(stats.levels, 2);
        assert_eq!(stats.coarse_n, 2);
        assert!(
            result.partition.same_grouping(&dumbbell_truth()),
            "got {} (fg {})",
            result.partition,
            result.fg
        );
    }

    #[test]
    fn matches_flat_tabu_on_paper_topology() {
        let table = rings_table();
        let sizes = [6, 6, 6, 6];
        let flat = TabuSearch::new(TabuParams::scaled(24)).search(
            &table,
            &sizes,
            &mut StdRng::seed_from_u64(42),
        );
        // max_coarse_n = 12 forces one contraction (sizes go odd after).
        let (ml, stats) = multilevel_map(&table, &sizes, 42, &small_params(12, 0));
        assert_eq!(stats.levels, 1);
        assert!(
            ml.fg <= flat.fg * 1.05 + EPS,
            "multilevel {} vs flat {}",
            ml.fg,
            flat.fg
        );
    }

    #[test]
    fn falls_back_to_flat_search_when_nothing_to_coarsen() {
        let table = rings_table();
        let sizes = [6, 6, 6, 6];
        let (ml, stats) = multilevel_map(&table, &sizes, 42, &small_params(256, 1));
        assert_eq!(stats.levels, 0);
        assert_eq!(stats.coarse_n, 24);
        assert_eq!(stats.refine_moves, 0);
        let flat = TabuSearch::new(TabuParams {
            max_iterations: 72,
            ..TabuParams::default()
        })
        .search(&table, &sizes, &mut StdRng::seed_from_u64(42));
        assert_eq!(ml.partition, flat.partition);
        assert_eq!(ml.fg, flat.fg);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let table = dumbbell_table();
        let baseline = multilevel_map(&table, &[4, 4], 7, &small_params(4, 1));
        for threads in [2, 3, 7] {
            let run = multilevel_map(&table, &[4, 4], 7, &small_params(4, threads));
            assert_eq!(run.0.partition, baseline.0.partition, "threads={threads}");
            assert_eq!(run.0.fg.to_bits(), baseline.0.fg.to_bits());
            assert_eq!(run.1, baseline.1);
        }
    }

    #[test]
    fn mapper_adapter_is_deterministic() {
        let table = dumbbell_table();
        let mapper = MultilevelMapper {
            params: small_params(4, 0),
        };
        let a = mapper.search(&table, &[4, 4], &mut StdRng::seed_from_u64(5));
        let b = mapper.search(&table, &[4, 4], &mut StdRng::seed_from_u64(5));
        assert_eq!(mapper.name(), "multilevel");
        assert_eq!(a, b);
    }

    #[test]
    fn strategy_parses_and_displays() {
        assert_eq!("flat".parse::<MapStrategy>().unwrap(), MapStrategy::Flat);
        assert_eq!(
            "multilevel".parse::<MapStrategy>().unwrap(),
            MapStrategy::Multilevel
        );
        assert!("greedy".parse::<MapStrategy>().is_err());
        assert_eq!(MapStrategy::Flat.to_string(), "flat");
        assert_eq!(MapStrategy::Multilevel.to_string(), "multilevel");
        assert_eq!(MapStrategy::default(), MapStrategy::Flat);
    }

    #[test]
    fn candidate_lists_are_nearest_neighbors() {
        let table = dumbbell_table();
        let cands = nearest_candidates(&table, 3, 1);
        assert_eq!(cands.len(), 8);
        for (v, list) in cands.iter().enumerate() {
            assert_eq!(list.len(), 3);
            assert!(!list.contains(&v));
            // Within the same square: its 3 square-mates are nearer than
            // anything across the bridge (except node 3/4 adjacency, so
            // just check sortedness by distance).
            for w in list.windows(2) {
                assert!(table.get(v, w[0]) <= table.get(v, w[1]) + EPS);
            }
        }
    }
}
