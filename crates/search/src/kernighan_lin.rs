//! Kernighan–Lin partition refinement as a mapping baseline.
//!
//! KL is the classic graph-partitioning heuristic; on the mapping problem
//! it refines a random partition by *passes*: within a pass over a cluster
//! pair, repeatedly take the best swap (even if it worsens the objective),
//! lock the swapped switches, and at the end rewind to the best prefix of
//! the swap sequence. The lookahead lets it climb out of some local minima
//! that pure steepest descent cannot — structurally similar to the tabu
//! escape rule, which makes it a meaningful comparator for §4.2.
//!
//! Multi-way partitions are handled by sweeping all cluster pairs until a
//! full sweep yields no improvement (or the pass budget is exhausted).

use crate::{check_sizes, Mapper, SearchResult};
use commsched_core::{Partition, SwapEvaluator, SwapObjective};
use commsched_distance::DistanceTable;
use commsched_topology::SwitchId;
use rand::RngCore;

/// The Kernighan–Lin mapper.
#[derive(Debug, Clone, Copy)]
pub struct KernighanLin {
    /// Random restarts.
    pub seeds: usize,
    /// Maximum pair-sweeps per restart.
    pub max_sweeps: usize,
}

impl Default for KernighanLin {
    fn default() -> Self {
        Self {
            seeds: 4,
            max_sweeps: 20,
        }
    }
}

/// One KL pass over the cluster pair `(ca, cb)`: returns the objective
/// improvement (>= 0) left applied on `eval`.
fn kl_pass(eval: &mut SwapEvaluator<'_>, ca: usize, cb: usize, evaluations: &mut u64) -> f64 {
    let n = eval.partition().num_switches();
    let mut locked = vec![false; n];
    // Sequence of applied swaps and the cumulative objective delta after
    // each.
    let mut seq: Vec<(SwitchId, SwitchId)> = Vec::new();
    let mut cumulative = 0.0;
    let mut best_cum = 0.0;
    let mut best_len = 0;

    loop {
        // Best swap among unlocked members of the two clusters.
        let mut best: Option<(f64, SwitchId, SwitchId)> = None;
        for a in 0..n {
            if locked[a] || eval.partition().cluster_of(a) != ca {
                continue;
            }
            for (b, &b_locked) in locked.iter().enumerate() {
                if b_locked || eval.partition().cluster_of(b) != cb {
                    continue;
                }
                let d = eval.delta(a, b);
                *evaluations += 1;
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, a, b));
                }
            }
        }
        let Some((d, a, b)) = best else { break };
        eval.apply(a, b);
        locked[a] = true;
        locked[b] = true;
        seq.push((a, b));
        cumulative += d;
        if cumulative < best_cum - 1e-15 {
            best_cum = cumulative;
            best_len = seq.len();
        }
    }

    // Rewind to the best prefix (swaps are involutions).
    for &(a, b) in seq[best_len..].iter().rev() {
        eval.apply(a, b);
    }
    -best_cum
}

impl Mapper for KernighanLin {
    fn name(&self) -> &'static str {
        "kernighan-lin"
    }

    fn search(
        &self,
        table: &DistanceTable,
        sizes: &[usize],
        rng: &mut dyn RngCore,
    ) -> SearchResult {
        assert!(check_sizes(table.n(), sizes), "invalid cluster sizes");
        let m = sizes.len();
        let mut best: Option<(f64, Partition)> = None;
        let mut evaluations = 0u64;
        for _ in 0..self.seeds.max(1) {
            let start = Partition::random(table.n(), sizes, rng).expect("validated sizes");
            let mut eval = SwapEvaluator::new(start, table);
            for _ in 0..self.max_sweeps {
                let mut improved = 0.0;
                for ca in 0..m {
                    for cb in (ca + 1)..m {
                        improved += kl_pass(&mut eval, ca, cb, &mut evaluations);
                    }
                }
                if improved <= 1e-12 {
                    break;
                }
            }
            let fg = eval.value();
            if best.as_ref().is_none_or(|(f, _)| fg < *f) {
                best = Some((fg, eval.into_partition()));
            }
        }
        let (fg, partition) = best.expect("at least one seed");
        SearchResult {
            partition,
            fg,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{dumbbell_table, dumbbell_truth, rings_table};
    use commsched_core::similarity_fg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_dumbbell_clusters() {
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(61);
        let res = KernighanLin::default().search(&table, &[4, 4], &mut rng);
        assert!(res.partition.same_grouping(&dumbbell_truth()));
    }

    #[test]
    fn finds_the_four_rings() {
        let table = rings_table();
        let mut rng = StdRng::seed_from_u64(62);
        let res = KernighanLin::default().search(&table, &[6, 6, 6, 6], &mut rng);
        let truth = commsched_core::Partition::from_clusters(
            &commsched_topology::designed::ring_of_rings_clusters(4, 6),
        )
        .unwrap();
        assert!(
            res.partition.same_grouping(&truth),
            "got {} (fg {})",
            res.partition,
            res.fg
        );
    }

    #[test]
    fn reported_fg_consistent() {
        let table = rings_table();
        let mut rng = StdRng::seed_from_u64(63);
        let res = KernighanLin::default().search(&table, &[12, 6, 6], &mut rng);
        assert_eq!(res.partition.sizes(), vec![12, 6, 6]);
        assert!((res.fg - similarity_fg(&res.partition, &table)).abs() < 1e-9);
    }

    #[test]
    fn pass_never_worsens() {
        // A single KL pass must leave the objective no worse than before
        // (the rewind guarantees it).
        let table = dumbbell_table();
        let mut rng = StdRng::seed_from_u64(64);
        for _ in 0..10 {
            let p = Partition::random(8, &[4, 4], &mut rng).unwrap();
            let before = similarity_fg(&p, &table);
            let mut eval = SwapEvaluator::new(p, &table);
            let mut evals = 0;
            let gain = kl_pass(&mut eval, 0, 1, &mut evals);
            assert!(gain >= -1e-12);
            assert!(eval.value() <= before + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let table = dumbbell_table();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            KernighanLin::default().search(&table, &[4, 4], &mut rng)
        };
        assert_eq!(run(3).partition, run(3).partition);
    }
}
