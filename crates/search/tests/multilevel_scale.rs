//! Integration gates for the multilevel pipeline at paper-plus scale:
//! quality within 5% of the flat tabu search on instances the flat
//! search can still handle, bit-identical results across thread counts,
//! and genuine coarsening on every tested size.

use commsched_core::quality;
use commsched_distance::{equivalent_distance_table_parallel, DistanceTable};
use commsched_routing::UpDownRouting;
use commsched_search::{multilevel_map, Mapper, MultilevelParams, TabuParams, TabuSearch};
use commsched_topology::{random_regular, RandomTopologyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn table_for(seed: u64, n: usize) -> DistanceTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = random_regular(RandomTopologyConfig::paper(n), &mut rng).unwrap();
    let routing = UpDownRouting::new(&topo, 0).unwrap();
    equivalent_distance_table_parallel(&topo, &routing, 0).unwrap()
}

fn balanced_sizes(n: usize, clusters: usize) -> Vec<usize> {
    vec![n / clusters; clusters]
}

#[test]
fn multilevel_within_5_percent_of_flat_tabu() {
    for (n, topo_seed) in [(64usize, 9_064u64), (128, 9_128)] {
        let table = table_for(topo_seed, n);
        let sizes = balanced_sizes(n, 4);

        let mut rng = StdRng::seed_from_u64(42);
        let flat = TabuSearch::new(TabuParams::scaled(n)).search(&table, &sizes, &mut rng);

        let params = MultilevelParams {
            max_coarse_n: 32,
            ..MultilevelParams::default()
        };
        let (ml, stats) = multilevel_map(&table, &sizes, 42, &params);
        assert!(stats.levels >= 1, "N={n}: no coarsening happened");
        let ml_fg = quality(&ml.partition, &table).fg;
        eprintln!(
            "N={n}: flat {:.6} multilevel {:.6} ratio {:.4} ({} levels, {} moves)",
            flat.fg,
            ml_fg,
            ml_fg / flat.fg,
            stats.levels,
            stats.refine_moves
        );
        assert!(
            ml_fg <= flat.fg * 1.05 + 1e-12,
            "N={n}: multilevel F_G {ml_fg:.6} more than 5% above flat {:.6}",
            flat.fg
        );
    }
}

#[test]
fn multilevel_bit_identical_across_threads() {
    let n = 128;
    let table = table_for(9_128, n);
    let sizes = balanced_sizes(n, 4);
    let base = MultilevelParams {
        max_coarse_n: 32,
        threads: 1,
        ..MultilevelParams::default()
    };
    let (one, stats_one) = multilevel_map(&table, &sizes, 7, &base);
    for threads in [2usize, 7] {
        let params = MultilevelParams {
            threads,
            ..base.clone()
        };
        let (t, stats_t) = multilevel_map(&table, &sizes, 7, &params);
        assert_eq!(one.partition, t.partition, "threads={threads}");
        assert_eq!(one.fg.to_bits(), t.fg.to_bits(), "threads={threads}");
        assert_eq!(stats_one, stats_t, "threads={threads}");
    }
}
