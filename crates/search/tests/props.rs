//! Property tests for the search heuristics: every mapper returns a valid
//! partition of the requested shape with an exactly consistent objective
//! value, and exact methods agree with each other.

use commsched_core::similarity_fg;
use commsched_distance::{equivalent_distance_table, DistanceTable};
use commsched_routing::UpDownRouting;
use commsched_search::{
    AStarSearch, AgglomerativeClustering, ExhaustiveSearch, GeneticSearch,
    GeneticSimulatedAnnealing, KernighanLin, Mapper, RandomSampling, SimulatedAnnealing,
    SteepestDescent, TabuSearch,
};
use commsched_topology::{random_regular, RandomTopologyConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn table_for(seed: u64, n: usize) -> DistanceTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = random_regular(RandomTopologyConfig::paper(n), &mut rng).unwrap();
    let routing = UpDownRouting::new(&topo, 0).unwrap();
    equivalent_distance_table(&topo, &routing).unwrap()
}

fn all_mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(TabuSearch::default()),
        Box::new(SteepestDescent { seeds: 2 }),
        Box::new(SimulatedAnnealing::default()),
        Box::new(GeneticSearch::default()),
        Box::new(GeneticSimulatedAnnealing::default()),
        Box::new(RandomSampling { samples: 50 }),
        Box::new(AStarSearch::default()),
        Box::new(ExhaustiveSearch),
        Box::new(AgglomerativeClustering),
        Box::new(KernighanLin::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every mapper returns a partition with the requested sizes and an
    /// `fg` that matches the direct formula.
    #[test]
    fn mappers_return_valid_consistent_results(
        topo_seed in any::<u64>(),
        search_seed in any::<u64>(),
    ) {
        let table = table_for(topo_seed, 8);
        let sizes = vec![2usize, 2, 2, 2];
        for mapper in all_mappers() {
            let mut rng = StdRng::seed_from_u64(search_seed);
            let res = mapper.search(&table, &sizes, &mut rng);
            prop_assert_eq!(res.partition.sizes(), sizes.clone(), "{}", mapper.name());
            let direct = similarity_fg(&res.partition, &table);
            prop_assert!(
                (res.fg - direct).abs() < 1e-9,
                "{}: reported {} direct {}",
                mapper.name(),
                res.fg,
                direct
            );
        }
    }

    /// The two exact methods always agree, and no heuristic beats them.
    #[test]
    fn exact_methods_agree_and_lower_bound(topo_seed in any::<u64>()) {
        let table = table_for(topo_seed, 8);
        let sizes = vec![2usize, 2, 2, 2];
        let mut rng = StdRng::seed_from_u64(0);
        let exact = ExhaustiveSearch.search(&table, &sizes, &mut rng);
        let astar = AStarSearch::default().search(&table, &sizes, &mut rng);
        prop_assert!((exact.fg - astar.fg).abs() < 1e-9);
        for mapper in all_mappers() {
            let mut rng = StdRng::seed_from_u64(1);
            let res = mapper.search(&table, &sizes, &mut rng);
            prop_assert!(
                res.fg >= exact.fg - 1e-9,
                "{} reported {} below optimum {}",
                mapper.name(),
                res.fg,
                exact.fg
            );
        }
    }

    /// Unequal cluster sizes are honoured by every mapper.
    #[test]
    fn uneven_sizes_honoured(
        topo_seed in any::<u64>(),
        search_seed in any::<u64>(),
    ) {
        let table = table_for(topo_seed, 8);
        let sizes = vec![4usize, 3, 1];
        for mapper in all_mappers() {
            let mut rng = StdRng::seed_from_u64(search_seed);
            let res = mapper.search(&table, &sizes, &mut rng);
            prop_assert_eq!(res.partition.sizes(), sizes.clone(), "{}", mapper.name());
        }
    }
}
