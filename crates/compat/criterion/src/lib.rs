#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace benches use — `Criterion`,
//! `bench_function`, `benchmark_group` (with `sample_size`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `criterion_group!`,
//! `criterion_main!` — on a plain wall-clock harness: each benchmark is
//! warmed up once, then timed over a fixed number of samples and reported
//! as mean time per iteration on stdout. No statistics beyond min/mean are
//! attempted; this keeps `cargo bench` runnable without crates.io access.

use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-benchmark timing context passed to the closure.
pub struct Bencher {
    samples: usize,
    /// Measured mean duration of one iteration, filled by [`Bencher::iter`].
    mean: Duration,
    min: Duration,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.mean = total / self.samples as u32;
        self.min = min;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        mean: Duration::ZERO,
        min: Duration::MAX,
    };
    f(&mut b);
    println!(
        "bench: {label:<50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        b.mean, b.min, samples
    );
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{id}", self.name), self.samples, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{id}", self.name), self.samples, |b| {
            f(b, input);
        });
        self
    }

    /// End the group (no-op; reports are printed as benchmarks run).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Number of timed samples per benchmark unless a group overrides it.
    const DEFAULT_SAMPLES: usize = 20;

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, Self::DEFAULT_SAMPLES, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: Self::DEFAULT_SAMPLES,
            _criterion: self,
        }
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // One warm-up plus DEFAULT_SAMPLES timed runs.
        assert_eq!(runs, Criterion::DEFAULT_SAMPLES + 1);
    }

    #[test]
    fn groups_honour_sample_size() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_with_input(BenchmarkId::new("f", 3), &2usize, |b, &x| {
                b.iter(|| {
                    runs += x;
                })
            });
            g.finish();
        }
        assert_eq!(runs, 2 * 6);
    }
}
