#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*` macros, [`prop_oneof!`],
//! [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], numeric
//! range strategies, tuple strategies, `any::<T>()` and
//! [`collection::vec`].
//!
//! Semantics: each test function runs `ProptestConfig::cases` iterations
//! with inputs drawn from a deterministically seeded RNG. There is **no
//! shrinking** — a failing case panics with the values that produced it
//! (strategies print their drawn values through `Debug` in the panic
//! message of the assertion itself).

use rand::rngs::StdRng;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::TestRng;
    use rand::Rng as _;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Uniform choice among boxed alternatives (backs [`crate::prop_oneof!`]).
    pub struct OneOf<T> {
        /// The alternatives; one is drawn uniformly per case.
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! needs alternatives");
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Whole-type strategies for primitives (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range — no NaN/inf, which
            // is what the workspace's numeric properties expect.
            let mag: f64 = rng.gen::<f64>();
            let exp: i32 = rng.gen_range(-64i32..64);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            sign * mag * (exp as f64).exp2()
        }
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng as _;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::` namespace alias used by some call sites.
    pub mod prop {
        pub use crate::collection;
    }
}

#[doc(hidden)]
pub fn __new_test_rng(test_name: &str) -> TestRng {
    // Deterministic per-test seed derived from the test name (FNV-1a) so
    // different tests explore different streams but reruns are identical.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    <TestRng as rand::SeedableRng>::seed_from_u64(h)
}

/// Assert inside a [`proptest!`] body (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current random case when its inputs don't satisfy a
/// precondition. Must appear at the top level of a [`proptest!`] body (it
/// expands to `continue` on the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![$($crate::strategy::Strategy::boxed($strategy)),+],
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::__new_test_rng(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        collection::vec(0u8..10, 1..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2i64..=2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn oneof_and_map_compose(
            n in prop_oneof![Just(4usize), Just(8)],
            pair in (any::<u16>(), 0.0f64..1.0),
        ) {
            prop_assert!(n == 4 || n == 8);
            let (a, f) = pair;
            prop_assert!(f < 1.0);
            let doubled = (Just(a).prop_map(|v| u32::from(v) * 2)).generate(
                &mut crate::__new_test_rng("inner"),
            );
            prop_assert_eq!(doubled, u32::from(a) * 2);
        }

        #[test]
        fn vec_lengths_in_range(xs in small_vec()) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }
    }

    #[test]
    fn per_test_seeds_differ_but_are_stable() {
        use rand::RngCore as _;
        let a1 = crate::__new_test_rng("alpha").next_u64();
        let a2 = crate::__new_test_rng("alpha").next_u64();
        let b = crate::__new_test_rng("beta").next_u64();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
