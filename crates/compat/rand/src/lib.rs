#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal, dependency-free implementation of the `rand 0.8`
//! API surface it actually uses: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream's ChaCha-based `StdRng`, but the
//! workspace only relies on seeded determinism (same seed → same
//! sequence), never on the exact upstream stream.

/// Low-level source of randomness (the `rand_core` trait).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types that can be sampled uniformly from an RNG (`rand`'s `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer/float types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                lo + (uniform_u64(rng, span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// High-level random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`; streams differ, determinism and
    /// statistical quality (for simulation purposes) do not.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element; `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleUniform::sample_half_open(rng, 0usize, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::SampleUniform::sample_half_open(rng, 0usize, self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input unchanged");
    }

    #[test]
    fn choose_on_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1u8, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(17);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0usize..10);
        assert!(x < 10);
        let b: bool = dyn_rng.gen();
        let _ = b;
    }
}
