//! Incremental repair of a table of equivalent distances after a
//! topology change.
//!
//! When a link fails (or is restored) only the pairs whose minimal-route
//! link sets touch the changed region get new equivalent distances —
//! everything else is unchanged, because each pair's resistance depends
//! *only* on its own route sub-network. [`repair_distance_table`] exploits
//! that: the caller supplies the affected pairs (computed by comparing
//! route link sets across epochs, see `commsched-dynamics`), the repair
//! re-solves exactly those pairs through the sparse LDLᵀ path and copies
//! every other entry forward from the previous table.
//!
//! Two properties make the result trustworthy:
//!
//! * **Copied pairs are bit-identical to a full rebuild.** A pair whose
//!   route link set is the same set of physical links (endpoints +
//!   slowdowns) in both epochs would be recomputed from the identical
//!   edge list, so copying the old value *is* the rebuild value.
//! * **Recomputed pairs are thread-count and memo independent.** The
//!   repair path canonicalizes each route link set into a sorted
//!   endpoint list ([`route_key`]) before circuit compaction, so the
//!   compacted circuit is a pure function of the key: a [`RepairMemo`]
//!   hit restores byte-for-byte what a miss would build, on any worker.
//!
//! The memo is keyed by endpoint pairs, **never** by `LinkId` — link ids
//! are renumbered compactly when a topology is rebuilt without a link,
//! so only endpoints are stable across epochs. Callers keep one
//! [`RepairMemo`] alive across faults to amortize compaction over a
//! whole fault schedule.

use crate::resistance::SolverKind;
use crate::resistance::Workspace;
use crate::table::{
    pair_resistance, try_series_path, CompactCircuit, DistanceTable, PathScan, TableError,
    TableOptions,
};
use commsched_routing::Routing;
use commsched_topology::{LinkId, SwitchId, Topology};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A route link set canonicalized to survive link-id renumbering:
/// `(a, b, slowdown)` triples with `a < b`, sorted lexicographically.
pub type RouteKey = Vec<(SwitchId, SwitchId, u32)>;

/// Canonical cross-epoch key of a minimal-route link set: the links as
/// sorted endpoint/slowdown triples. Two epochs' route sets compare equal
/// under this key exactly when they use the same physical wires, however
/// the link ids were renumbered in between.
pub fn route_key(topo: &Topology, links: &[LinkId]) -> RouteKey {
    let mut key: RouteKey = links
        .iter()
        .map(|&l| {
            let link = topo.link(l);
            (link.a, link.b, topo.link_slowdown(l))
        })
        .collect();
    key.sort_unstable();
    key
}

/// Cap on retained compacted circuits — the same memory bound as the
/// per-build memo, but sized for a long-lived cache that persists across
/// fault epochs.
const REPAIR_MEMO_CAP: usize = 4096;

/// A cross-epoch memo of compacted circuits keyed by [`RouteKey`].
///
/// Hits skip the node/edge compaction of the sparse solve; they never
/// change computed values (the circuit is a pure function of the key).
/// Keep one alive across successive repairs so route sub-networks that
/// survive a fault are compacted once per schedule, not once per epoch.
#[derive(Default)]
pub struct RepairMemo {
    map: HashMap<RouteKey, CompactCircuit>,
    hits: u64,
    misses: u64,
}

impl RepairMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained circuits.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo holds no circuits.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit count (solver-path pairs answered from the memo).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count (solver-path pairs that ran compaction).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// What one incremental repair did.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The repaired table (recomputed pairs patched over a copy of the
    /// previous table).
    pub table: DistanceTable,
    /// Unordered pairs in the table, `n(n-1)/2`.
    pub pairs_total: usize,
    /// Pairs actually re-solved (after normalization and dedup).
    pub pairs_recomputed: usize,
    /// Largest `|new - old|` over the recomputed pairs.
    pub max_delta: f64,
}

/// Normalize `(i, j)` pairs to `i < j`, drop diagonals and duplicates,
/// and group by source row (the row batch is what amortizes the per-row
/// BFS of `minimal_route_links_row`).
fn group_rows(
    affected: &[(SwitchId, SwitchId)],
    n: usize,
) -> Result<Vec<(SwitchId, Vec<SwitchId>)>, TableError> {
    let mut by_row: Vec<Vec<SwitchId>> = vec![Vec::new(); n];
    for &(a, b) in affected {
        if a >= n || b >= n {
            return Err(TableError::BadRepairPair { src: a, dst: b, n });
        }
        if a == b {
            continue;
        }
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        by_row[i].push(j);
    }
    let mut rows = Vec::new();
    for (i, mut js) in by_row.into_iter().enumerate() {
        if js.is_empty() {
            continue;
        }
        js.sort_unstable();
        js.dedup();
        rows.push((i, js));
    }
    Ok(rows)
}

/// Repair `prev` into the table of the post-fault `topo`/`routing` by
/// re-solving only `affected` pairs and copying every other entry.
///
/// The caller guarantees that every pair whose minimal-route link set
/// changed (as physical wires — see [`route_key`]) is listed in
/// `affected`; extra pairs are harmless (their recomputation returns the
/// old value). Results are bit-identical across `options.threads` values
/// and across memo states, and agree with a from-scratch rebuild to
/// solver precision (copied pairs exactly, recomputed pairs to ~1e-12).
///
/// # Errors
/// See [`TableError`]; size mismatches between `prev`, `topo` and
/// `routing` and out-of-range pairs are rejected up front.
pub fn repair_distance_table(
    prev: &DistanceTable,
    topo: &Topology,
    routing: &dyn Routing,
    affected: &[(SwitchId, SwitchId)],
    options: TableOptions,
    memo: &mut RepairMemo,
) -> Result<RepairOutcome, TableError> {
    let n = topo.num_switches();
    if routing.num_switches() != n {
        return Err(TableError::SizeMismatch {
            topology: n,
            routing: routing.num_switches(),
        });
    }
    if prev.n() != n {
        return Err(TableError::RepairSize {
            prev: prev.n(),
            topology: n,
        });
    }
    let rows = group_rows(affected, n)?;
    let pairs_recomputed: usize = rows.iter().map(|(_, js)| js.len()).sum();
    let mut table = prev.clone();

    type Failure = ((SwitchId, SwitchId), TableError);
    // One worker's output: solved entries, fresh memo insertions, hit/miss
    // tallies, and its lexicographically-first failure.
    type WorkerOut = (
        Vec<(SwitchId, SwitchId, f64)>,
        HashMap<RouteKey, CompactCircuit>,
        (u64, u64),
        Option<Failure>,
    );

    let threads = if options.solver == SolverKind::DenseGaussian {
        1
    } else {
        resolve_threads(options.threads, rows.len())
    };
    let shared = &memo.map;
    let rows_ref = &rows;
    let cursor = AtomicUsize::new(0);
    let worker = || -> WorkerOut {
        let mut ws = Workspace::new();
        let mut scan = PathScan::default();
        let mut row_links: Vec<Vec<LinkId>> = Vec::new();
        let mut out: Vec<(SwitchId, SwitchId, f64)> = Vec::new();
        let mut fresh: HashMap<RouteKey, CompactCircuit> = HashMap::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut first_err: Option<Failure> = None;
        let note = |err: &mut Option<Failure>, pair: (SwitchId, SwitchId), e: TableError| {
            if err.as_ref().is_none_or(|&(p, _)| pair < p) {
                *err = Some((pair, e));
            }
        };
        loop {
            let k = cursor.fetch_add(1, Ordering::Relaxed);
            if k >= rows_ref.len() {
                break;
            }
            let (i, ref js) = rows_ref[k];
            if options.solver == SolverKind::DenseGaussian {
                for &j in js {
                    match pair_resistance(topo, routing, i, j) {
                        Ok(d) => out.push((i, j, d)),
                        Err(e) => note(&mut first_err, (i, j), e),
                    }
                }
                continue;
            }
            routing.minimal_route_links_row(i, &mut row_links);
            for &j in js {
                // Same fast path as the full build: a series path needs
                // no circuit at all. Link order matches the rebuild's, so
                // the sum is bit-identical to a from-scratch build.
                if let Some(r) = try_series_path(topo, &mut scan, &row_links[j], i, j) {
                    out.push((i, j, r));
                    continue;
                }
                let wrap = |error| TableError::Resistance {
                    src: i,
                    dst: j,
                    error,
                };
                // Compact from the canonical sorted edge list, not route
                // order: the circuit becomes a pure function of the key,
                // which is what makes memo hits (and cross-epoch reuse)
                // value-neutral down to the last bit.
                let key = route_key(topo, &row_links[j]);
                if let Some(c) = shared.get(&key).or_else(|| fresh.get(&key)) {
                    hits += 1;
                    ws.load_circuit(&c.nodes, &c.edges);
                    match ws.solve_compacted(i, j) {
                        Ok(d) => out.push((i, j, d)),
                        Err(e) => note(&mut first_err, (i, j), wrap(e)),
                    }
                    continue;
                }
                misses += 1;
                let edges: Vec<(SwitchId, SwitchId, f64)> =
                    key.iter().map(|&(a, b, s)| (a, b, f64::from(s))).collect();
                ws.compact(&edges);
                if options.memoize {
                    let (nodes, circuit_edges) = ws.circuit();
                    fresh.insert(
                        key,
                        CompactCircuit {
                            nodes: nodes.to_vec(),
                            edges: circuit_edges.to_vec(),
                        },
                    );
                }
                match ws.solve_compacted(i, j) {
                    Ok(d) => out.push((i, j, d)),
                    Err(e) => note(&mut first_err, (i, j), wrap(e)),
                }
            }
        }
        (out, fresh, (hits, misses), first_err)
    };

    let results: Vec<WorkerOut> = if threads == 1 {
        vec![worker()]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("repair worker panicked"))
                .collect()
        })
    };

    let mut fail: Option<Failure> = None;
    let mut max_delta = 0.0f64;
    let mut inserts: Vec<HashMap<RouteKey, CompactCircuit>> = Vec::new();
    for (entries, fresh, (hits, misses), err) in results {
        if let Some((pair, e)) = err {
            if fail.as_ref().is_none_or(|&(p, _)| pair < p) {
                fail = Some((pair, e));
            }
        }
        memo.hits += hits;
        memo.misses += misses;
        inserts.push(fresh);
        for (i, j, d) in entries {
            max_delta = max_delta.max((d - prev.get(i, j)).abs());
            table.set_pair(i, j, d);
        }
    }
    if let Some((_, e)) = fail {
        return Err(e);
    }
    // Merge fresh circuits under the cap. Which entries survive when the
    // cap bites is load-order dependent, but a memo entry never changes a
    // value, so this cannot affect results.
    for fresh in inserts {
        for (key, circuit) in fresh {
            if memo.map.len() >= REPAIR_MEMO_CAP {
                break;
            }
            memo.map.entry(key).or_insert(circuit);
        }
    }
    Ok(RepairOutcome {
        table,
        pairs_total: n * (n.saturating_sub(1)) / 2,
        pairs_recomputed,
        max_delta,
    })
}

fn resolve_threads(threads: usize, units: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    };
    t.clamp(1, units.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{equivalent_distance_table, equivalent_distance_table_with};
    use commsched_routing::UpDownRouting;
    use commsched_topology::{designed, Topology, TopologyBuilder};

    /// Rebuild `topo` without the link between `a` and `b`, keeping the
    /// switch count (unlike `Topology::without_link`, disconnection is
    /// allowed — the repair layer itself must not care).
    fn drop_link(topo: &Topology, a: SwitchId, b: SwitchId) -> Topology {
        let mut builder =
            TopologyBuilder::new(topo.num_switches(), topo.hosts_per_switch()).allow_disconnected();
        for (l, link) in topo.links().iter().enumerate() {
            if (link.a, link.b) == (a.min(b), a.max(b)) {
                continue;
            }
            builder = builder.link_with_slowdown(link.a, link.b, topo.link_slowdown(l));
        }
        builder.build().expect("rebuilt topology")
    }

    /// Pairs whose canonical route link sets differ between routings.
    fn changed_pairs(
        old_topo: &Topology,
        old_r: &dyn Routing,
        new_topo: &Topology,
        new_r: &dyn Routing,
    ) -> Vec<(SwitchId, SwitchId)> {
        let n = old_topo.num_switches();
        let mut out = Vec::new();
        let (mut old_row, mut new_row) = (Vec::new(), Vec::new());
        for i in 0..n {
            old_r.minimal_route_links_row(i, &mut old_row);
            new_r.minimal_route_links_row(i, &mut new_row);
            for j in (i + 1)..n {
                if route_key(old_topo, &old_row[j]) != route_key(new_topo, &new_row[j]) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    fn assert_tables_close(a: &DistanceTable, b: &DistanceTable, tol: f64) {
        assert_eq!(a.n(), b.n());
        for i in 0..a.n() {
            for j in 0..a.n() {
                assert!(
                    (a.get(i, j) - b.get(i, j)).abs() < tol,
                    "({i}, {j}): {} != {}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn no_affected_pairs_copies_the_table() {
        let t = designed::ring(8, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let prev = equivalent_distance_table(&t, &r).unwrap();
        let mut memo = RepairMemo::new();
        let out =
            repair_distance_table(&prev, &t, &r, &[], TableOptions::default(), &mut memo).unwrap();
        assert_eq!(out.table, prev);
        assert_eq!(out.pairs_recomputed, 0);
        assert_eq!(out.max_delta, 0.0);
        assert_eq!(out.pairs_total, 28);
    }

    #[test]
    fn repair_matches_rebuild_after_link_failure() {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let prev = equivalent_distance_table(&t, &r).unwrap();
        // Kill one ring link; up*/down* re-roots routes around it.
        let link0 = t.link(0);
        let t2 = drop_link(&t, link0.a, link0.b);
        let r2 = UpDownRouting::new(&t2, 0).unwrap();
        let affected = changed_pairs(&t, &r, &t2, &r2);
        assert!(!affected.is_empty());
        let mut memo = RepairMemo::new();
        let out = repair_distance_table(
            &prev,
            &t2,
            &r2,
            &affected,
            TableOptions::default(),
            &mut memo,
        )
        .unwrap();
        let rebuilt = equivalent_distance_table(&t2, &r2).unwrap();
        assert_tables_close(&out.table, &rebuilt, 1e-9);
        assert_eq!(out.pairs_recomputed, affected.len());
        assert!(out.max_delta > 0.0, "a failed link must move some distance");
    }

    #[test]
    fn repair_is_bit_identical_across_threads_and_memo_state() {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let prev = equivalent_distance_table(&t, &r).unwrap();
        let link0 = t.link(5);
        let t2 = drop_link(&t, link0.a, link0.b);
        let r2 = UpDownRouting::new(&t2, 0).unwrap();
        let affected = changed_pairs(&t, &r, &t2, &r2);
        let mut baseline_memo = RepairMemo::new();
        let baseline = repair_distance_table(
            &prev,
            &t2,
            &r2,
            &affected,
            TableOptions::default(),
            &mut baseline_memo,
        )
        .unwrap();
        for threads in [1usize, 2, 7] {
            // A fresh memo and the already-warm one must agree bitwise.
            for memo in [&mut RepairMemo::new(), &mut baseline_memo] {
                let out = repair_distance_table(
                    &prev,
                    &t2,
                    &r2,
                    &affected,
                    TableOptions {
                        threads,
                        ..Default::default()
                    },
                    memo,
                )
                .unwrap();
                assert_eq!(out.table, baseline.table, "threads = {threads}");
            }
        }
        assert!(baseline_memo.hits() > 0, "warm memo should have hit");
    }

    #[test]
    fn dense_solver_repair_agrees() {
        let t = designed::ring(8, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let prev = equivalent_distance_table(&t, &r).unwrap();
        let link0 = t.link(2);
        let t2 = drop_link(&t, link0.a, link0.b);
        let r2 = UpDownRouting::new(&t2, 0).unwrap();
        let affected = changed_pairs(&t, &r, &t2, &r2);
        let mut memo = RepairMemo::new();
        let dense = repair_distance_table(
            &prev,
            &t2,
            &r2,
            &affected,
            TableOptions {
                solver: SolverKind::DenseGaussian,
                ..Default::default()
            },
            &mut memo,
        )
        .unwrap();
        let rebuilt = equivalent_distance_table_with(
            &t2,
            &r2,
            TableOptions {
                solver: SolverKind::DenseGaussian,
                ..Default::default()
            },
        )
        .unwrap();
        assert_tables_close(&dense.table, &rebuilt, 1e-9);
    }

    #[test]
    fn bad_pairs_and_sizes_rejected() {
        let t = designed::ring(6, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let prev = equivalent_distance_table(&t, &r).unwrap();
        let mut memo = RepairMemo::new();
        assert!(matches!(
            repair_distance_table(&prev, &t, &r, &[(0, 9)], TableOptions::default(), &mut memo),
            Err(TableError::BadRepairPair { dst: 9, .. })
        ));
        let smaller = designed::ring(5, 1);
        let r5 = UpDownRouting::new(&smaller, 0).unwrap();
        assert!(matches!(
            repair_distance_table(
                &prev,
                &smaller,
                &r5,
                &[],
                TableOptions::default(),
                &mut memo
            ),
            Err(TableError::RepairSize {
                prev: 6,
                topology: 5
            })
        ));
    }

    #[test]
    fn duplicate_and_reversed_pairs_are_normalized() {
        let t = designed::ring(6, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let prev = equivalent_distance_table(&t, &r).unwrap();
        let mut memo = RepairMemo::new();
        let out = repair_distance_table(
            &prev,
            &t,
            &r,
            &[(2, 4), (4, 2), (2, 4), (3, 3)],
            TableOptions::default(),
            &mut memo,
        )
        .unwrap();
        assert_eq!(out.pairs_recomputed, 1);
        // Same epoch, so recomputation returns the old value.
        assert_eq!(out.table, prev);
    }
}
