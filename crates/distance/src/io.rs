//! Plain-text serialization of distance tables.
//!
//! Tables are expensive to recompute for large networks; this format lets
//! tools cache them:
//!
//! ```text
//! # commsched distance-table v1
//! n 4
//! row 0.0 1.0 2.0 3.0
//! row 1.0 0.0 1.0 2.0
//! ...
//! ```

use crate::table::{ApproxReport, DistanceTable};
use std::fmt::Write as _;

/// Errors raised while parsing a table.
#[derive(Debug, Clone, PartialEq)]
pub enum TableParseError {
    /// A line did not match any directive.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// Missing or malformed `n` directive.
    MissingSize,
    /// Wrong number of rows or row entries.
    ShapeMismatch {
        /// Expected dimension.
        expected: usize,
        /// What was found.
        found: usize,
    },
    /// A non-finite or unparsable entry.
    BadEntry {
        /// 1-based line number.
        line: usize,
    },
    /// The parsed matrix is not symmetric with a zero diagonal.
    NotADistanceTable,
}

impl std::fmt::Display for TableParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableParseError::BadLine { line } => write!(f, "line {line}: unrecognized"),
            TableParseError::MissingSize => write!(f, "missing 'n' directive"),
            TableParseError::ShapeMismatch { expected, found } => {
                write!(f, "expected {expected} entries/rows, found {found}")
            }
            TableParseError::BadEntry { line } => write!(f, "line {line}: bad entry"),
            TableParseError::NotADistanceTable => {
                write!(f, "matrix is not symmetric with zero diagonal")
            }
        }
    }
}

impl std::error::Error for TableParseError {}

/// Serialize a table to the text format (full precision).
pub fn table_to_text(table: &DistanceTable) -> String {
    table_to_text_with_report(table, None)
}

/// Serialize a table plus its optional approximation report. The report
/// becomes one `approx` directive so a cached approximate table carries
/// its certified error bound across restarts:
///
/// ```text
/// approx <eps_micros> <err_max> <pairs_approximated> <pairs_escalated>
/// ```
pub fn table_to_text_with_report(table: &DistanceTable, report: Option<&ApproxReport>) -> String {
    let mut out = String::new();
    writeln!(out, "# commsched distance-table v1").expect("write to string");
    writeln!(out, "n {}", table.n()).expect("write to string");
    if let Some(r) = report {
        writeln!(
            out,
            "approx {} {:.17e} {} {}",
            crate::table::eps_to_micros(r.eps),
            r.err_max,
            r.pairs_approximated,
            r.pairs_escalated
        )
        .expect("write to string");
    }
    for i in 0..table.n() {
        out.push_str("row");
        for &v in table.row(i) {
            write!(out, " {v:.17e}").expect("write to string");
        }
        out.push('\n');
    }
    out
}

/// Parse the text format, discarding any `approx` directive.
///
/// # Errors
/// See [`TableParseError`].
pub fn table_from_text(text: &str) -> Result<DistanceTable, TableParseError> {
    table_from_text_with_report(text).map(|(table, _)| table)
}

/// Parse the text format, also returning the approximation report when
/// the text carries an `approx` directive (tables written before the
/// directive existed simply return `None`).
///
/// # Errors
/// See [`TableParseError`].
pub fn table_from_text_with_report(
    text: &str,
) -> Result<(DistanceTable, Option<ApproxReport>), TableParseError> {
    let mut n: Option<usize> = None;
    let mut report: Option<ApproxReport> = None;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.trim();
        if content.is_empty() || content.starts_with('#') {
            continue;
        }
        let mut parts = content.split_whitespace();
        match parts.next() {
            Some("n") => {
                n = Some(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(TableParseError::MissingSize)?,
                );
            }
            Some("approx") => {
                let mut next = |bad: TableParseError| parts.next().ok_or(bad);
                let eps_micros: u32 = next(TableParseError::BadEntry { line })?
                    .parse()
                    .map_err(|_| TableParseError::BadEntry { line })?;
                let err_max: f64 = next(TableParseError::BadEntry { line })?
                    .parse()
                    .map_err(|_| TableParseError::BadEntry { line })?;
                let pairs_approximated: u64 = next(TableParseError::BadEntry { line })?
                    .parse()
                    .map_err(|_| TableParseError::BadEntry { line })?;
                let pairs_escalated: u64 = next(TableParseError::BadEntry { line })?
                    .parse()
                    .map_err(|_| TableParseError::BadEntry { line })?;
                if !err_max.is_finite() || err_max < 0.0 {
                    return Err(TableParseError::BadEntry { line });
                }
                report = Some(ApproxReport {
                    eps: f64::from(eps_micros) / 1e6,
                    err_max,
                    pairs_approximated,
                    pairs_escalated,
                });
            }
            Some("row") => {
                let row: Result<Vec<f64>, _> = parts
                    .map(|v| {
                        v.parse::<f64>()
                            .map_err(|_| TableParseError::BadEntry { line })
                    })
                    .collect();
                let row = row?;
                if row.iter().any(|x| !x.is_finite()) {
                    return Err(TableParseError::BadEntry { line });
                }
                rows.push(row);
            }
            _ => return Err(TableParseError::BadLine { line }),
        }
    }
    let n = n.ok_or(TableParseError::MissingSize)?;
    if rows.len() != n {
        return Err(TableParseError::ShapeMismatch {
            expected: n,
            found: rows.len(),
        });
    }
    for row in &rows {
        if row.len() != n {
            return Err(TableParseError::ShapeMismatch {
                expected: n,
                found: row.len(),
            });
        }
    }
    // Validate symmetry + zero diagonal before constructing.
    for (i, row) in rows.iter().enumerate() {
        if row[i] != 0.0 {
            return Err(TableParseError::NotADistanceTable);
        }
        for (j, &v) in row.iter().enumerate() {
            if (v - rows[j][i]).abs() > 1e-12 {
                return Err(TableParseError::NotADistanceTable);
            }
        }
    }
    Ok((DistanceTable::from_fn(n, |i, j| rows[i][j]), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::equivalent_distance_table;
    use commsched_routing::UpDownRouting;
    use commsched_topology::designed;

    #[test]
    fn round_trip_is_exact() {
        let topo = designed::paper_24_switch();
        let routing = UpDownRouting::new(&topo, 0).unwrap();
        let table = equivalent_distance_table(&topo, &routing).unwrap();
        let text = table_to_text(&table);
        let back = table_from_text(&text).unwrap();
        assert_eq!(back, table, "full-precision round trip");
    }

    #[test]
    fn approx_report_round_trips() {
        let topo = designed::paper_24_switch();
        let routing = UpDownRouting::new(&topo, 0).unwrap();
        let table = equivalent_distance_table(&topo, &routing).unwrap();
        let report = ApproxReport {
            eps: 0.05,
            err_max: 0.031_25,
            pairs_approximated: 200,
            pairs_escalated: 76,
        };
        let text = table_to_text_with_report(&table, Some(&report));
        let (back, back_report) = table_from_text_with_report(&text).unwrap();
        assert_eq!(back, table);
        assert_eq!(back_report, Some(report));
        // The plain parser accepts the directive and discards it.
        assert_eq!(table_from_text(&text).unwrap(), table);
        // Reports without the directive come back as None.
        let (_, none) = table_from_text_with_report(&table_to_text(&table)).unwrap();
        assert_eq!(none, None);
        // Malformed directives are rejected, not ignored.
        assert!(matches!(
            table_from_text("n 1\napprox nope\nrow 0\n").unwrap_err(),
            TableParseError::BadEntry { .. }
        ));
    }

    #[test]
    fn shape_errors_detected() {
        assert_eq!(
            table_from_text("n 2\nrow 0 1\n").unwrap_err(),
            TableParseError::ShapeMismatch {
                expected: 2,
                found: 1
            }
        );
        assert_eq!(
            table_from_text("n 2\nrow 0 1 2\nrow 1 0 2\n").unwrap_err(),
            TableParseError::ShapeMismatch {
                expected: 2,
                found: 3
            }
        );
        // A row before `n` is tolerated, but the header must still appear.
        assert_eq!(
            table_from_text("row 0\n").unwrap_err(),
            TableParseError::MissingSize
        );
        assert_eq!(
            table_from_text("").unwrap_err(),
            TableParseError::MissingSize
        );
        assert_eq!(
            table_from_text("n 1\ncolumn 0\n").unwrap_err(),
            TableParseError::BadLine { line: 2 }
        );
    }

    #[test]
    fn integrity_checks() {
        // Asymmetric.
        assert_eq!(
            table_from_text("n 2\nrow 0 1\nrow 2 0\n").unwrap_err(),
            TableParseError::NotADistanceTable
        );
        // Non-zero diagonal.
        assert_eq!(
            table_from_text("n 2\nrow 1 2\nrow 2 0\n").unwrap_err(),
            TableParseError::NotADistanceTable
        );
        // Non-finite entry.
        assert!(matches!(
            table_from_text("n 2\nrow 0 inf\nrow inf 0\n").unwrap_err(),
            TableParseError::BadEntry { .. }
        ));
    }
}
