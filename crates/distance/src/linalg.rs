//! Minimal dense linear algebra: just enough to solve the Laplacian systems
//! of the resistance model. Row-major `f64` matrices and Gaussian
//! elimination with partial pivoting.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Add `v` to element `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }
}

/// Error from the linear solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is (numerically) singular.
    Singular,
    /// The matrix is not square or the RHS length mismatches.
    Shape,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "singular matrix"),
            LinalgError::Shape => write!(f, "shape mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solve `A x = b` by Gaussian elimination with partial pivoting. `a` and
/// `b` are consumed as workspace.
///
/// # Errors
/// [`LinalgError::Shape`] on non-square `A` or mismatched `b`;
/// [`LinalgError::Singular`] when a pivot is numerically zero.
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::Shape);
    }
    const EPS: f64 = 1e-12;
    for col in 0..n {
        // Partial pivot: largest |value| in this column at or below the
        // diagonal.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a.get(r1, col)
                    .abs()
                    .partial_cmp(&a.get(r2, col).abs())
                    .expect("NaN in solver")
            })
            .expect("non-empty range");
        if a.get(pivot_row, col).abs() < EPS {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = a.get(col, c);
                *a.get_mut(col, c) = a.get(pivot_row, c);
                *a.get_mut(pivot_row, c) = tmp;
            }
            b.swap(col, pivot_row);
        }
        let pivot = a.get(col, col);
        for r in (col + 1)..n {
            let factor = a.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = a.get(col, c);
                *a.get_mut(r, c) -= factor * v;
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for (c, &xc) in x.iter().enumerate().skip(r + 1) {
            acc -= a.get(r, c) * xc;
        }
        x[r] = acc / a.get(r, r);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn solve_identity() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            *a.get_mut(i, i) = 1.0;
        }
        let x = solve(a, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_2x2() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert_close(x[0], 1.0);
        assert_close(x[1], 3.0);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_close(x[0], 3.0);
        assert_close(x[1], 2.0);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(solve(a, vec![1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn shape_mismatch_detected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(solve(a, vec![1.0, 2.0]), Err(LinalgError::Shape));
        let a = Matrix::zeros(2, 2);
        assert_eq!(solve(a, vec![1.0]), Err(LinalgError::Shape));
    }

    #[test]
    fn solution_satisfies_system() {
        // Random-ish 5x5 diagonally dominant system.
        let n = 5;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                *a.get_mut(i, j) = ((i * 7 + j * 3) % 5) as f64;
            }
            *a.get_mut(i, i) += 20.0;
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = solve(a.clone(), b.clone()).unwrap();
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert_close(*u, *v);
        }
    }

    #[test]
    fn mul_vec_basic() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }
}
