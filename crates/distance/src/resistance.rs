//! Effective resistance of a unit-resistor network.
//!
//! The paper's equivalent distance between two switches is the electrical
//! resistance between them when every link on a minimal legal route is
//! replaced by a 1 Ω resistor (§3). This module solves that circuit: build
//! the graph Laplacian over the sub-network's nodes, ground one terminal,
//! inject a unit current at the other, and read off the potential.

use crate::linalg::{solve, LinalgError, Matrix};
use commsched_topology::SwitchId;

/// Errors from the resistance computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResistanceError {
    /// The two terminals are not connected in the given edge set.
    TerminalsDisconnected,
    /// A terminal does not appear as an endpoint of any edge.
    TerminalNotInNetwork(SwitchId),
    /// Internal solver failure (should not occur on a connected circuit).
    Solver(LinalgError),
}

impl std::fmt::Display for ResistanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResistanceError::TerminalsDisconnected => {
                write!(f, "terminals are not connected in the sub-network")
            }
            ResistanceError::TerminalNotInNetwork(s) => {
                write!(f, "terminal {s} not present in the sub-network")
            }
            ResistanceError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for ResistanceError {}

/// Effective resistance between `a` and `b` in a network of unit
/// resistors. Edges may be listed in any order; duplicates are
/// idempotently ignored (a link appears once in the circuit no matter how
/// many routes traverse it).
///
/// # Errors
/// See [`ResistanceError`].
pub fn effective_resistance(
    edges: &[(SwitchId, SwitchId)],
    a: SwitchId,
    b: SwitchId,
) -> Result<f64, ResistanceError> {
    let weighted: Vec<(SwitchId, SwitchId, f64)> =
        edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
    effective_resistance_weighted(&weighted, a, b)
}

/// Effective resistance between `a` and `b` with per-edge resistances
/// (heterogeneous link speeds: a slower link has a larger resistance).
/// Duplicate edges (same endpoints) keep the first listed resistance.
///
/// # Errors
/// See [`ResistanceError`].
///
/// # Panics
/// Debug-asserts that every resistance is strictly positive (callers pass
/// slowdowns ≥ 1 by construction).
pub fn effective_resistance_weighted(
    edges: &[(SwitchId, SwitchId, f64)],
    a: SwitchId,
    b: SwitchId,
) -> Result<f64, ResistanceError> {
    if a == b {
        return Ok(0.0);
    }
    debug_assert!(
        edges.iter().all(|&(_, _, r)| r > 0.0),
        "resistances must be positive"
    );
    // Compact the node ids appearing in the edge set.
    let mut nodes: Vec<SwitchId> = edges.iter().flat_map(|&(u, v, _)| [u, v]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let index_of = |s: SwitchId| nodes.binary_search(&s).ok();
    let ia = index_of(a).ok_or(ResistanceError::TerminalNotInNetwork(a))?;
    let ib = index_of(b).ok_or(ResistanceError::TerminalNotInNetwork(b))?;
    let k = nodes.len();

    // Deduplicate edges (unordered endpoints), keeping the first weight.
    let mut dedup: Vec<(usize, usize, f64)> = Vec::with_capacity(edges.len());
    let mut seen = std::collections::HashSet::with_capacity(edges.len());
    for &(u, v, r) in edges {
        let (iu, iv) = (
            index_of(u).expect("endpoint indexed"),
            index_of(v).expect("endpoint indexed"),
        );
        if iu == iv {
            continue;
        }
        let key = (iu.min(iv), iu.max(iv));
        if seen.insert(key) {
            dedup.push((key.0, key.1, r));
        }
    }

    // Connectivity check between the terminals (the Laplacian minor would be
    // singular otherwise; detect it explicitly for a better error).
    let plain: Vec<(usize, usize)> = dedup.iter().map(|&(u, v, _)| (u, v)).collect();
    if !connected(k, &plain, ia, ib) {
        return Err(ResistanceError::TerminalsDisconnected);
    }

    // Laplacian with row/column `ib` removed (grounding b); entries are
    // conductances 1/r.
    let reduced = |i: usize| {
        if i < ib {
            Some(i)
        } else if i == ib {
            None
        } else {
            Some(i - 1)
        }
    };
    let mut lap = Matrix::zeros(k - 1, k - 1);
    for &(u, v, r) in &dedup {
        let g = 1.0 / r;
        let (ru, rv) = (reduced(u), reduced(v));
        if let Some(ru) = ru {
            lap.add(ru, ru, g);
        }
        if let Some(rv) = rv {
            lap.add(rv, rv, g);
        }
        if let (Some(ru), Some(rv)) = (ru, rv) {
            lap.add(ru, rv, -g);
            lap.add(rv, ru, -g);
        }
    }
    let mut rhs = vec![0.0; k - 1];
    let ra = reduced(ia).expect("a != b so a is not the grounded node");
    rhs[ra] = 1.0;
    let potentials = solve(lap, rhs).map_err(ResistanceError::Solver)?;
    Ok(potentials[ra])
}

fn connected(k: usize, edges: &[(usize, usize)], from: usize, to: usize) -> bool {
    let mut adj = vec![Vec::new(); k];
    for &(u, v) in edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let mut seen = vec![false; k];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(u) = stack.pop() {
        if u == to {
            return true;
        }
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn single_resistor() {
        assert_close(effective_resistance(&[(0, 1)], 0, 1).unwrap(), 1.0);
    }

    #[test]
    fn series_chain() {
        let edges = [(0, 1), (1, 2), (2, 3)];
        assert_close(effective_resistance(&edges, 0, 3).unwrap(), 3.0);
        assert_close(effective_resistance(&edges, 0, 2).unwrap(), 2.0);
    }

    #[test]
    fn two_parallel_paths() {
        // Square 0-1-2 and 0-3-2: two 2 Ω paths in parallel -> 1 Ω.
        let edges = [(0, 1), (1, 2), (0, 3), (3, 2)];
        assert_close(effective_resistance(&edges, 0, 2).unwrap(), 1.0);
    }

    #[test]
    fn direct_plus_detour() {
        // Triangle: 1 Ω direct in parallel with 2 Ω detour -> 2/3 Ω.
        let edges = [(0, 1), (1, 2), (0, 2)];
        assert_close(effective_resistance(&edges, 0, 2).unwrap(), 2.0 / 3.0);
    }

    #[test]
    fn wheatstone_balanced() {
        // Balanced Wheatstone bridge of unit resistors: bridge edge carries
        // no current; R = 1.
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)];
        assert_close(effective_resistance(&edges, 0, 3).unwrap(), 1.0);
    }

    #[test]
    fn same_terminal_zero() {
        assert_close(effective_resistance(&[(0, 1)], 1, 1).unwrap(), 0.0);
    }

    #[test]
    fn duplicate_edges_ignored() {
        // The same physical link listed twice must still count once.
        let once = effective_resistance(&[(0, 1), (1, 2)], 0, 2).unwrap();
        let twice = effective_resistance(&[(0, 1), (0, 1), (1, 2)], 0, 2).unwrap();
        assert_close(once, twice);
    }

    #[test]
    fn missing_terminal_detected() {
        assert_eq!(
            effective_resistance(&[(0, 1)], 0, 5).unwrap_err(),
            ResistanceError::TerminalNotInNetwork(5)
        );
    }

    #[test]
    fn disconnected_terminals_detected() {
        assert_eq!(
            effective_resistance(&[(0, 1), (2, 3)], 0, 3).unwrap_err(),
            ResistanceError::TerminalsDisconnected
        );
    }

    #[test]
    fn weighted_series_and_parallel_laws() {
        // Series: 2 Ω + 3 Ω = 5 Ω.
        let edges = [(0, 1, 2.0), (1, 2, 3.0)];
        assert_close(effective_resistance_weighted(&edges, 0, 2).unwrap(), 5.0);
        // Parallel: 2 Ω ∥ 3 Ω = 6/5 Ω.
        let edges = [(0, 1, 2.0), (0, 2, 1e9), (0, 1, 3.0)];
        // duplicate endpoints keep the FIRST weight -> 2 Ω only
        let _ = edges;
        let par = [(0, 1, 2.0), (0, 2, 3.0), (2, 1, 1e-12)];
        // ~ 2 ∥ 3: the 2-hop path has ~3 Ω total.
        let r = effective_resistance_weighted(&par, 0, 1).unwrap();
        assert!((r - 6.0 / 5.0).abs() < 1e-6, "{r}");
    }

    #[test]
    fn weighted_duplicate_keeps_first() {
        let a = effective_resistance_weighted(&[(0, 1, 2.0), (0, 1, 9.0)], 0, 1).unwrap();
        assert_close(a, 2.0);
    }

    #[test]
    fn unit_weights_match_unweighted() {
        let plain = effective_resistance(&[(0, 1), (1, 2), (0, 2)], 0, 2).unwrap();
        let weighted =
            effective_resistance_weighted(&[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)], 0, 2).unwrap();
        assert_close(plain, weighted);
    }

    #[test]
    fn resistance_bounded_by_shortest_path() {
        // Adding any parallel structure can only decrease resistance below
        // the series length of one path.
        let edges = [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)];
        let r = effective_resistance(&edges, 0, 3).unwrap();
        assert!(r < 2.0 + 1e-9);
        assert!(r > 0.0);
        // 3 Ω parallel 2 Ω = 6/5.
        assert_close(r, 1.2);
    }
}
