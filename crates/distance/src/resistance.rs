//! Effective resistance of a unit-resistor network.
//!
//! The paper's equivalent distance between two switches is the electrical
//! resistance between them when every link on a minimal legal route is
//! replaced by a 1 Ω resistor (§3). This module solves that circuit: build
//! the graph Laplacian over the sub-network's nodes, ground one terminal,
//! inject a unit current at the other, and read off the potential.

use crate::linalg::{solve, LinalgError, Matrix};
use crate::sparse::SpdFactor;
use commsched_topology::SwitchId;
use std::collections::HashSet;

/// Which linear solver backs the resistance computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Dense Gaussian elimination with partial pivoting
    /// ([`crate::linalg::solve`]) — the original path, kept as the
    /// correctness oracle.
    DenseGaussian,
    /// Envelope LDLᵀ Cholesky with a reverse Cuthill–McKee ordering
    /// ([`SpdFactor`]). The grounded Laplacian minor is symmetric
    /// positive definite, so no pivoting is needed. The fast path and
    /// the default.
    #[default]
    SparseCholesky,
    /// Certified-interval approximation for large networks: each pair is
    /// bracketed by a Nash–Williams cut lower bound and a single-route
    /// (Rayleigh) upper bound on its route sub-network; pairs whose
    /// certified relative error exceeds `TableOptions::approx_eps_micros`
    /// escalate to the exact [`SolverKind::SparseCholesky`] path, so the
    /// reported error bound always holds. See
    /// [`crate::equivalent_distance_table_with_report`].
    Approximate,
}

/// Errors from the resistance computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResistanceError {
    /// The two terminals are not connected in the given edge set.
    TerminalsDisconnected,
    /// A terminal does not appear as an endpoint of any edge.
    TerminalNotInNetwork(SwitchId),
    /// Internal solver failure (should not occur on a connected circuit).
    Solver(LinalgError),
}

impl std::fmt::Display for ResistanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResistanceError::TerminalsDisconnected => {
                write!(f, "terminals are not connected in the sub-network")
            }
            ResistanceError::TerminalNotInNetwork(s) => {
                write!(f, "terminal {s} not present in the sub-network")
            }
            ResistanceError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for ResistanceError {}

/// Effective resistance between `a` and `b` in a network of unit
/// resistors. Edges may be listed in any order; duplicates are
/// idempotently ignored (a link appears once in the circuit no matter how
/// many routes traverse it).
///
/// # Errors
/// See [`ResistanceError`].
pub fn effective_resistance(
    edges: &[(SwitchId, SwitchId)],
    a: SwitchId,
    b: SwitchId,
) -> Result<f64, ResistanceError> {
    let weighted: Vec<(SwitchId, SwitchId, f64)> =
        edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
    effective_resistance_weighted(&weighted, a, b)
}

/// Effective resistance between `a` and `b` with per-edge resistances
/// (heterogeneous link speeds: a slower link has a larger resistance).
/// Duplicate edges (same endpoints) keep the first listed resistance.
///
/// # Errors
/// See [`ResistanceError`].
///
/// # Panics
/// Debug-asserts that every resistance is strictly positive (callers pass
/// slowdowns ≥ 1 by construction).
pub fn effective_resistance_weighted(
    edges: &[(SwitchId, SwitchId, f64)],
    a: SwitchId,
    b: SwitchId,
) -> Result<f64, ResistanceError> {
    if a == b {
        return Ok(0.0);
    }
    debug_assert!(
        edges.iter().all(|&(_, _, r)| r > 0.0),
        "resistances must be positive"
    );
    // Compact the node ids appearing in the edge set.
    let mut nodes: Vec<SwitchId> = edges.iter().flat_map(|&(u, v, _)| [u, v]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let index_of = |s: SwitchId| nodes.binary_search(&s).ok();
    let ia = index_of(a).ok_or(ResistanceError::TerminalNotInNetwork(a))?;
    let ib = index_of(b).ok_or(ResistanceError::TerminalNotInNetwork(b))?;
    let k = nodes.len();

    // Deduplicate edges (unordered endpoints), keeping the first weight.
    let mut dedup: Vec<(usize, usize, f64)> = Vec::with_capacity(edges.len());
    let mut seen = std::collections::HashSet::with_capacity(edges.len());
    for &(u, v, r) in edges {
        let (iu, iv) = (
            index_of(u).expect("endpoint indexed"),
            index_of(v).expect("endpoint indexed"),
        );
        if iu == iv {
            continue;
        }
        let key = (iu.min(iv), iu.max(iv));
        if seen.insert(key) {
            dedup.push((key.0, key.1, r));
        }
    }

    // Connectivity check between the terminals (the Laplacian minor would be
    // singular otherwise; detect it explicitly for a better error).
    let plain: Vec<(usize, usize)> = dedup.iter().map(|&(u, v, _)| (u, v)).collect();
    if !connected(k, &plain, ia, ib) {
        return Err(ResistanceError::TerminalsDisconnected);
    }

    // Laplacian with row/column `ib` removed (grounding b); entries are
    // conductances 1/r.
    let reduced = |i: usize| {
        if i < ib {
            Some(i)
        } else if i == ib {
            None
        } else {
            Some(i - 1)
        }
    };
    let mut lap = Matrix::zeros(k - 1, k - 1);
    for &(u, v, r) in &dedup {
        let g = 1.0 / r;
        let (ru, rv) = (reduced(u), reduced(v));
        if let Some(ru) = ru {
            lap.add(ru, ru, g);
        }
        if let Some(rv) = rv {
            lap.add(rv, rv, g);
        }
        if let (Some(ru), Some(rv)) = (ru, rv) {
            lap.add(ru, rv, -g);
            lap.add(rv, ru, -g);
        }
    }
    let mut rhs = vec![0.0; k - 1];
    let ra = reduced(ia).expect("a != b so a is not the grounded node");
    rhs[ra] = 1.0;
    let potentials = solve(lap, rhs).map_err(ResistanceError::Solver)?;
    Ok(potentials[ra])
}

/// Reusable per-worker scratch for repeated resistance computations.
///
/// A table build calls the resistance solver once per switch pair; the
/// node-compaction, dedup, connectivity and solver buffers in here
/// survive across calls so the hot loop stops allocating per pair.
#[derive(Debug, Default)]
pub struct Workspace {
    nodes: Vec<SwitchId>,
    dedup: Vec<(usize, usize, f64)>,
    seen: HashSet<(usize, usize)>,
    adj_g: Vec<Vec<(usize, f64)>>,
    alive: Vec<bool>,
    relabel: Vec<usize>,
    stack: Vec<usize>,
    visited: Vec<bool>,
    rhs: Vec<f64>,
    scratch: Vec<f64>,
    diag: Vec<f64>,
    offdiag: Vec<(usize, usize, f64)>,
}

impl Workspace {
    /// Fresh workspace (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// Compact the node ids of `edges` into `self.nodes` (sorted,
    /// deduplicated) and the edges into `self.dedup` (compact indices,
    /// unordered endpoints, keep-first weight). Returns the node count.
    pub(crate) fn compact(&mut self, edges: &[(SwitchId, SwitchId, f64)]) -> usize {
        self.nodes.clear();
        self.nodes
            .extend(edges.iter().flat_map(|&(u, v, _)| [u, v]));
        self.nodes.sort_unstable();
        self.nodes.dedup();
        self.dedup.clear();
        // Keep-first dedup of unordered endpoint pairs. Route
        // sub-networks are small, so a linear scan of the kept edges
        // beats hashing; large ad-hoc edge lists fall back to the set.
        let linear = edges.len() <= 32;
        self.seen.clear();
        for &(u, v, r) in edges {
            let iu = self.nodes.binary_search(&u).expect("endpoint indexed");
            let iv = self.nodes.binary_search(&v).expect("endpoint indexed");
            if iu == iv {
                continue;
            }
            let key = (iu.min(iv), iu.max(iv));
            let fresh = if linear {
                !self.dedup.iter().any(|&(a, b, _)| (a, b) == key)
            } else {
                self.seen.insert(key)
            };
            if fresh {
                self.dedup.push((key.0, key.1, r));
            }
        }
        self.nodes.len()
    }

    /// The compacted circuit currently held by the workspace, as produced
    /// by [`Workspace::compact`]: sorted node ids and deduplicated edges
    /// over compact indices. The table builder's memo stores clones of
    /// this.
    pub(crate) fn circuit(&self) -> (&[SwitchId], &[(usize, usize, f64)]) {
        (&self.nodes, &self.dedup)
    }

    /// Restore a circuit previously captured with [`Workspace::circuit`]
    /// — byte-for-byte what [`Workspace::compact`] would rebuild from the
    /// same edge list, so a memo hit is bit-identical to a recomputation.
    pub(crate) fn load_circuit(&mut self, nodes: &[SwitchId], edges: &[(usize, usize, f64)]) {
        self.nodes.clear();
        self.nodes.extend_from_slice(nodes);
        self.dedup.clear();
        self.dedup.extend_from_slice(edges);
    }

    /// Solve the compacted circuit for terminals `a`, `b` (original
    /// switch ids).
    ///
    /// First eliminates every degree-≤2 non-terminal node exactly — the
    /// dangling, series and parallel resistor laws, which are precisely
    /// the first pivots a minimum-degree Cholesky would take. Minimal
    /// up*/down* route sub-networks are near-paths, so the common case
    /// collapses to a single equivalent conductance with no factorization
    /// at all; an irreducible core (degree ≥ 3 everywhere) falls back to
    /// the envelope LDLᵀ of [`SpdFactor`] on the grounded minor.
    ///
    /// # Errors
    /// Same surface as the dense oracle: a missing terminal, disconnected
    /// terminals, or [`LinalgError::Singular`] when some node floats in a
    /// component apart from the terminals (the grounded Laplacian minor
    /// is singular there, which is exactly how dense elimination fails).
    pub(crate) fn solve_compacted(
        &mut self,
        a: SwitchId,
        b: SwitchId,
    ) -> Result<f64, ResistanceError> {
        debug_assert_ne!(a, b, "callers short-circuit the zero diagonal");
        let k = self.nodes.len();
        let ia = self
            .nodes
            .binary_search(&a)
            .map_err(|_| ResistanceError::TerminalNotInNetwork(a))?;
        let ib = self
            .nodes
            .binary_search(&b)
            .map_err(|_| ResistanceError::TerminalNotInNetwork(b))?;

        // Conductance adjacency; `dedup` merged duplicate links already,
        // so each neighbour appears once per list.
        if self.adj_g.len() < k {
            self.adj_g.resize_with(k, Vec::new);
        }
        for l in &mut self.adj_g[..k] {
            l.clear();
        }
        for &(u, v, r) in &self.dedup {
            let g = 1.0 / r;
            self.adj_g[u].push((v, g));
            self.adj_g[v].push((u, g));
        }

        // Reachability from `a` in one DFS: an unreachable `b` gets the
        // dedicated error; any other unreachable node means a floating
        // component, which makes the grounded minor singular — report it
        // the way the dense solver would.
        self.visited.clear();
        self.visited.resize(k, false);
        self.stack.clear();
        self.stack.push(ia);
        self.visited[ia] = true;
        let mut reached = 1usize;
        while let Some(u) = self.stack.pop() {
            for &(v, _) in &self.adj_g[u] {
                if !self.visited[v] {
                    self.visited[v] = true;
                    reached += 1;
                    self.stack.push(v);
                }
            }
        }
        if !self.visited[ib] {
            return Err(ResistanceError::TerminalsDisconnected);
        }
        if reached < k {
            return Err(ResistanceError::Solver(LinalgError::Singular));
        }

        // Exact degree-≤2 elimination. Degrees never grow (eliminating a
        // node removes one incident edge from each neighbour and adds at
        // most one merged edge), so the worklist only shrinks.
        self.alive.clear();
        self.alive.resize(k, true);
        self.stack.clear();
        for v in 0..k {
            if v != ia && v != ib && self.adj_g[v].len() <= 2 {
                self.stack.push(v);
            }
        }
        while let Some(v) = self.stack.pop() {
            if !self.alive[v] {
                continue;
            }
            let deg = self.adj_g[v].len();
            debug_assert!(deg <= 2, "queued nodes cannot gain neighbours");
            self.alive[v] = false;
            if deg == 1 {
                // Dangling spur: carries no current.
                let (x, _) = self.adj_g[v][0];
                remove_neighbor(&mut self.adj_g[x], v);
                if x != ia && x != ib && self.adj_g[x].len() <= 2 {
                    self.stack.push(x);
                }
            } else if deg == 2 {
                // Series law, merging in parallel with any existing x—y
                // conductance.
                let (x, g1) = self.adj_g[v][0];
                let (y, g2) = self.adj_g[v][1];
                remove_neighbor(&mut self.adj_g[x], v);
                remove_neighbor(&mut self.adj_g[y], v);
                let g = g1 * g2 / (g1 + g2);
                if let Some(e) = self.adj_g[x].iter_mut().find(|e| e.0 == y) {
                    e.1 += g;
                    let back = self.adj_g[y]
                        .iter_mut()
                        .find(|e| e.0 == x)
                        .expect("adjacency is symmetric");
                    back.1 += g;
                } else {
                    self.adj_g[x].push((y, g));
                    self.adj_g[y].push((x, g));
                }
                for t in [x, y] {
                    if t != ia && t != ib && self.adj_g[t].len() <= 2 {
                        self.stack.push(t);
                    }
                }
            }
            self.adj_g[v].clear();
        }

        let live = self.alive[..k].iter().filter(|&&x| x).count();
        if live == 2 {
            // Terminals are never eliminated, so the two survivors are
            // `a` and `b`, joined by one merged conductance.
            let g = self.adj_g[ia]
                .iter()
                .find(|e| e.0 == ib)
                .map(|e| e.1)
                .expect("exact reductions preserve terminal connectivity");
            return Ok(1.0 / g);
        }

        // Irreducible core: ground `b`, factor the SPD minor, and read
        // the potential at `a` under a unit injected current.
        if self.relabel.len() < k {
            self.relabel.resize(k, usize::MAX);
        }
        let mut m = 0usize;
        for v in 0..k {
            self.relabel[v] = if self.alive[v] && v != ib {
                m += 1;
                m - 1
            } else {
                usize::MAX
            };
        }
        self.diag.clear();
        self.diag.resize(m, 0.0);
        self.offdiag.clear();
        for u in 0..k {
            if !self.alive[u] {
                continue;
            }
            let ru = self.relabel[u];
            for &(v, g) in &self.adj_g[u] {
                if v < u {
                    continue; // visit each surviving edge once
                }
                let rv = self.relabel[v];
                if ru != usize::MAX {
                    self.diag[ru] += g;
                }
                if rv != usize::MAX {
                    self.diag[rv] += g;
                }
                if ru != usize::MAX && rv != usize::MAX {
                    self.offdiag.push((ru.min(rv), ru.max(rv), -g));
                }
            }
        }
        let factor =
            SpdFactor::factor(&self.diag, &self.offdiag).map_err(ResistanceError::Solver)?;
        self.rhs.clear();
        self.rhs.resize(m, 0.0);
        let ra = self.relabel[ia];
        self.rhs[ra] = 1.0;
        factor.solve_in_place(&mut self.rhs, &mut self.scratch);
        Ok(self.rhs[ra])
    }
}

fn remove_neighbor(list: &mut Vec<(usize, f64)>, v: usize) {
    if let Some(p) = list.iter().position(|e| e.0 == v) {
        list.swap_remove(p);
    }
}

/// A resistor network compacted and factorized once, queryable for any
/// terminal pair.
///
/// The reduced Laplacian is grounded at the network's *largest* node id
/// (a fixed choice independent of the queried pair), factorized with
/// the sparse LDLᵀ path, and each query solves `L_red x = e_a - e_b`
/// and reads `x_a - x_b`. Because the factorization depends only on the
/// edge set, pairs whose minimal-route link sets are identical can
/// share one `PreparedNetwork` — the memoization the table builder
/// exploits.
#[derive(Debug)]
pub struct PreparedNetwork {
    nodes: Vec<SwitchId>,
    factor: SpdFactor,
}

impl PreparedNetwork {
    /// Build and factor the network (allocating a throwaway workspace).
    ///
    /// # Errors
    /// See [`PreparedNetwork::build_in`].
    pub fn build(edges: &[(SwitchId, SwitchId, f64)]) -> Result<Self, ResistanceError> {
        Self::build_in(&mut Workspace::new(), edges)
    }

    /// Build and factor the network using `ws` for scratch.
    ///
    /// # Errors
    /// [`ResistanceError::Solver`] when the grounded minor is not
    /// positive definite — for a resistor network this means the edge
    /// set is disconnected.
    ///
    /// # Panics
    /// Debug-asserts that every resistance is strictly positive.
    pub fn build_in(
        ws: &mut Workspace,
        edges: &[(SwitchId, SwitchId, f64)],
    ) -> Result<Self, ResistanceError> {
        debug_assert!(
            edges.iter().all(|&(_, _, r)| r > 0.0),
            "resistances must be positive"
        );
        ws.compact(edges);
        Self::assemble(ws)
    }

    /// Factor the already-compacted workspace contents.
    fn assemble(ws: &mut Workspace) -> Result<Self, ResistanceError> {
        let m = ws.nodes.len().saturating_sub(1);
        ws.diag.clear();
        ws.diag.resize(m, 0.0);
        ws.offdiag.clear();
        for &(u, v, r) in &ws.dedup {
            let g = 1.0 / r;
            if u < m {
                ws.diag[u] += g;
            }
            if v < m {
                ws.diag[v] += g;
            }
            if u < m && v < m {
                ws.offdiag.push((u, v, -g));
            }
        }
        let factor = SpdFactor::factor(&ws.diag, &ws.offdiag).map_err(ResistanceError::Solver)?;
        Ok(Self {
            nodes: ws.nodes.clone(),
            factor,
        })
    }

    /// The network's node ids, sorted ascending.
    pub fn nodes(&self) -> &[SwitchId] {
        &self.nodes
    }

    /// Effective resistance between `a` and `b`, reusing `ws` solver
    /// buffers.
    ///
    /// # Errors
    /// [`ResistanceError::TerminalNotInNetwork`] when a terminal is not
    /// a node of this network.
    pub fn resistance_in(
        &self,
        ws: &mut Workspace,
        a: SwitchId,
        b: SwitchId,
    ) -> Result<f64, ResistanceError> {
        if a == b {
            return Ok(0.0);
        }
        let ia = self
            .nodes
            .binary_search(&a)
            .map_err(|_| ResistanceError::TerminalNotInNetwork(a))?;
        let ib = self
            .nodes
            .binary_search(&b)
            .map_err(|_| ResistanceError::TerminalNotInNetwork(b))?;
        let m = self.factor.dim();
        ws.rhs.clear();
        ws.rhs.resize(m, 0.0);
        if ia < m {
            ws.rhs[ia] = 1.0;
        }
        if ib < m {
            ws.rhs[ib] = -1.0;
        }
        self.factor.solve_in_place(&mut ws.rhs, &mut ws.scratch);
        let xa = if ia < m { ws.rhs[ia] } else { 0.0 };
        let xb = if ib < m { ws.rhs[ib] } else { 0.0 };
        Ok(xa - xb)
    }

    /// Convenience wrapper over [`PreparedNetwork::resistance_in`] with
    /// throwaway buffers (bit-identical results).
    ///
    /// # Errors
    /// See [`PreparedNetwork::resistance_in`].
    pub fn resistance(&self, a: SwitchId, b: SwitchId) -> Result<f64, ResistanceError> {
        self.resistance_in(&mut Workspace::new(), a, b)
    }
}

/// Solver-selectable, workspace-reusing variant of
/// [`effective_resistance_weighted`].
///
/// With [`SolverKind::DenseGaussian`] it delegates to the oracle
/// unchanged; with [`SolverKind::SparseCholesky`] it reuses the buffers
/// in `ws`, collapses degree-≤2 nodes by the exact resistor laws, and
/// only factors an irreducible core (see [`Workspace::solve_compacted`]).
/// The two paths agree to well below 1e-9 on every connected pair and
/// report the same error surface.
///
/// # Errors
/// See [`ResistanceError`].
pub fn effective_resistance_weighted_in(
    ws: &mut Workspace,
    edges: &[(SwitchId, SwitchId, f64)],
    a: SwitchId,
    b: SwitchId,
    solver: SolverKind,
) -> Result<f64, ResistanceError> {
    if solver == SolverKind::DenseGaussian {
        return effective_resistance_weighted(edges, a, b);
    }
    if a == b {
        return Ok(0.0);
    }
    debug_assert!(
        edges.iter().all(|&(_, _, r)| r > 0.0),
        "resistances must be positive"
    );
    ws.compact(edges);
    ws.solve_compacted(a, b)
}

fn connected(k: usize, edges: &[(usize, usize)], from: usize, to: usize) -> bool {
    let mut adj = vec![Vec::new(); k];
    for &(u, v) in edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let mut seen = vec![false; k];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(u) = stack.pop() {
        if u == to {
            return true;
        }
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn single_resistor() {
        assert_close(effective_resistance(&[(0, 1)], 0, 1).unwrap(), 1.0);
    }

    #[test]
    fn series_chain() {
        let edges = [(0, 1), (1, 2), (2, 3)];
        assert_close(effective_resistance(&edges, 0, 3).unwrap(), 3.0);
        assert_close(effective_resistance(&edges, 0, 2).unwrap(), 2.0);
    }

    #[test]
    fn two_parallel_paths() {
        // Square 0-1-2 and 0-3-2: two 2 Ω paths in parallel -> 1 Ω.
        let edges = [(0, 1), (1, 2), (0, 3), (3, 2)];
        assert_close(effective_resistance(&edges, 0, 2).unwrap(), 1.0);
    }

    #[test]
    fn direct_plus_detour() {
        // Triangle: 1 Ω direct in parallel with 2 Ω detour -> 2/3 Ω.
        let edges = [(0, 1), (1, 2), (0, 2)];
        assert_close(effective_resistance(&edges, 0, 2).unwrap(), 2.0 / 3.0);
    }

    #[test]
    fn wheatstone_balanced() {
        // Balanced Wheatstone bridge of unit resistors: bridge edge carries
        // no current; R = 1.
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)];
        assert_close(effective_resistance(&edges, 0, 3).unwrap(), 1.0);
    }

    #[test]
    fn same_terminal_zero() {
        assert_close(effective_resistance(&[(0, 1)], 1, 1).unwrap(), 0.0);
    }

    #[test]
    fn duplicate_edges_ignored() {
        // The same physical link listed twice must still count once.
        let once = effective_resistance(&[(0, 1), (1, 2)], 0, 2).unwrap();
        let twice = effective_resistance(&[(0, 1), (0, 1), (1, 2)], 0, 2).unwrap();
        assert_close(once, twice);
    }

    #[test]
    fn missing_terminal_detected() {
        assert_eq!(
            effective_resistance(&[(0, 1)], 0, 5).unwrap_err(),
            ResistanceError::TerminalNotInNetwork(5)
        );
    }

    #[test]
    fn disconnected_terminals_detected() {
        assert_eq!(
            effective_resistance(&[(0, 1), (2, 3)], 0, 3).unwrap_err(),
            ResistanceError::TerminalsDisconnected
        );
    }

    #[test]
    fn weighted_series_and_parallel_laws() {
        // Series: 2 Ω + 3 Ω = 5 Ω.
        let edges = [(0, 1, 2.0), (1, 2, 3.0)];
        assert_close(effective_resistance_weighted(&edges, 0, 2).unwrap(), 5.0);
        // Parallel: 2 Ω ∥ 3 Ω = 6/5 Ω (the 2-hop detour totals ~3 Ω).
        let par = [(0, 1, 2.0), (0, 2, 3.0), (2, 1, 1e-12)];
        let r = effective_resistance_weighted(&par, 0, 1).unwrap();
        assert!((r - 6.0 / 5.0).abs() < 1e-6, "{r}");
        // Duplicate endpoints keep the FIRST weight: the 3 Ω re-listing
        // of link 0-1 is ignored (and the dangling 0-2 spur carries no
        // current), so the answer is the first-listed 2 Ω alone.
        let dup = [(0, 1, 2.0), (0, 2, 1e9), (0, 1, 3.0)];
        assert_close(effective_resistance_weighted(&dup, 0, 1).unwrap(), 2.0);
    }

    #[test]
    fn weighted_duplicate_keeps_first() {
        let a = effective_resistance_weighted(&[(0, 1, 2.0), (0, 1, 9.0)], 0, 1).unwrap();
        assert_close(a, 2.0);
    }

    #[test]
    fn unit_weights_match_unweighted() {
        let plain = effective_resistance(&[(0, 1), (1, 2), (0, 2)], 0, 2).unwrap();
        let weighted =
            effective_resistance_weighted(&[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)], 0, 2).unwrap();
        assert_close(plain, weighted);
    }

    type FixtureCircuit = (Vec<(SwitchId, SwitchId, f64)>, SwitchId, SwitchId);

    /// All the small fixed circuits of this module, as (edges, a, b).
    fn fixture_circuits() -> Vec<FixtureCircuit> {
        vec![
            (vec![(0, 1, 1.0)], 0, 1),
            (vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], 0, 3),
            (
                vec![(0, 1, 1.0), (1, 2, 1.0), (0, 3, 1.0), (3, 2, 1.0)],
                0,
                2,
            ),
            (vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)], 0, 2),
            (
                vec![
                    (0, 1, 1.0),
                    (0, 2, 1.0),
                    (1, 3, 1.0),
                    (2, 3, 1.0),
                    (1, 2, 1.0),
                ],
                0,
                3,
            ),
            (vec![(0, 1, 2.0), (1, 2, 3.0)], 0, 2),
            (vec![(4, 9, 0.5), (9, 2, 4.0), (4, 2, 1.5)], 4, 2),
            // K4 core with a series tail: exercises the mixed path where
            // degree-2 elimination shrinks the circuit but an
            // irreducible degree-3 core still needs the factorization.
            (
                vec![
                    (0, 1, 1.0),
                    (0, 2, 2.0),
                    (0, 3, 1.0),
                    (1, 2, 1.0),
                    (1, 3, 3.0),
                    (2, 3, 1.0),
                    (3, 4, 2.0),
                    (4, 5, 1.0),
                ],
                0,
                5,
            ),
        ]
    }

    #[test]
    fn sparse_solver_matches_dense_oracle() {
        let mut ws = Workspace::new();
        for (edges, a, b) in fixture_circuits() {
            let dense = effective_resistance_weighted(&edges, a, b).unwrap();
            let sparse =
                effective_resistance_weighted_in(&mut ws, &edges, a, b, SolverKind::SparseCholesky)
                    .unwrap();
            assert!(
                (dense - sparse).abs() < 1e-12,
                "{dense} != {sparse} on {edges:?}"
            );
            // The dense kind of the _in entry point IS the oracle.
            let via_in =
                effective_resistance_weighted_in(&mut ws, &edges, a, b, SolverKind::DenseGaussian)
                    .unwrap();
            assert!((dense - via_in).abs() == 0.0);
        }
    }

    #[test]
    fn sparse_solver_error_surface_matches_dense() {
        let mut ws = Workspace::new();
        for solver in [SolverKind::DenseGaussian, SolverKind::SparseCholesky] {
            let edges = [(0, 1, 1.0)];
            assert_eq!(
                effective_resistance_weighted_in(&mut ws, &edges, 0, 5, solver).unwrap_err(),
                ResistanceError::TerminalNotInNetwork(5),
                "{solver:?}"
            );
            let split = [(0, 1, 1.0), (2, 3, 1.0)];
            assert_eq!(
                effective_resistance_weighted_in(&mut ws, &split, 0, 3, solver).unwrap_err(),
                ResistanceError::TerminalsDisconnected,
                "{solver:?}"
            );
            // Terminals connected but a component floats: the grounded
            // minor is singular, and both solvers must say so.
            assert_eq!(
                effective_resistance_weighted_in(&mut ws, &split, 0, 1, solver).unwrap_err(),
                ResistanceError::Solver(LinalgError::Singular),
                "{solver:?}"
            );
            assert_close(
                effective_resistance_weighted_in(&mut ws, &split, 1, 1, solver).unwrap(),
                0.0,
            );
        }
    }

    #[test]
    fn prepared_network_serves_all_pairs() {
        // One factorization of the chain answers every terminal pair —
        // the property the table builder's memoization relies on.
        let edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)];
        let prepared = PreparedNetwork::build(&edges).unwrap();
        assert_eq!(prepared.nodes(), &[0, 1, 2, 3]);
        let mut ws = Workspace::new();
        for a in 0..4usize {
            for b in 0..4usize {
                let want = effective_resistance_weighted(&edges, a, b).unwrap();
                let got = prepared.resistance_in(&mut ws, a, b).unwrap();
                assert!((want - got).abs() < 1e-12, "({a},{b}): {want} != {got}");
                // The allocating convenience gives bit-identical values.
                assert_eq!(got.to_bits(), prepared.resistance(a, b).unwrap().to_bits());
            }
        }
        assert_eq!(
            prepared.resistance(0, 9).unwrap_err(),
            ResistanceError::TerminalNotInNetwork(9)
        );
    }

    #[test]
    fn prepared_network_rejects_disconnected_edge_sets() {
        // Grounding happens in one component, so the other component's
        // Laplacian block is singular and the factorization refuses.
        let split = [(0, 1, 1.0), (2, 3, 1.0)];
        assert!(matches!(
            PreparedNetwork::build(&split),
            Err(ResistanceError::Solver(LinalgError::Singular))
        ));
    }

    #[test]
    fn workspace_reuse_across_networks_is_clean() {
        // Stale state from a larger network must not leak into a later,
        // smaller one.
        let mut ws = Workspace::new();
        let big = [
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
        ];
        let _ = effective_resistance_weighted_in(&mut ws, &big, 0, 5, SolverKind::SparseCholesky)
            .unwrap();
        let small = [(7, 9, 2.0)];
        assert_close(
            effective_resistance_weighted_in(&mut ws, &small, 7, 9, SolverKind::SparseCholesky)
                .unwrap(),
            2.0,
        );
    }

    #[test]
    fn resistance_bounded_by_shortest_path() {
        // Adding any parallel structure can only decrease resistance below
        // the series length of one path.
        let edges = [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)];
        let r = effective_resistance(&edges, 0, 3).unwrap();
        assert!(r < 2.0 + 1e-9);
        assert!(r > 0.0);
        // 3 Ω parallel 2 Ω = 6/5.
        assert_close(r, 1.2);
    }
}
