//! Envelope (skyline) LDLᵀ factorization for sparse SPD systems.
//!
//! The resistance model solves one grounded Laplacian minor per switch
//! pair. Those minors are symmetric positive definite — grounding one
//! node of a connected resistor network leaves a matrix whose every
//! Schur-complement pivot is strictly positive — so a Cholesky-style
//! LDLᵀ factorization needs **no pivoting** and its fill is confined to
//! the row envelope. A reverse Cuthill–McKee ordering keeps that
//! envelope narrow on the degree-bounded route sub-networks this crate
//! actually solves, turning the dense O(m³) Gaussian elimination into
//! an O(m·b²) sweep for bandwidth `b`.

use crate::linalg::LinalgError;

/// Relative pivot-collapse threshold: a Schur pivot this far below the
/// matrix scale means "not positive definite here" (for a grounded
/// Laplacian: the network is disconnected).
const PIVOT_EPS: f64 = 1e-12;

/// Envelope LDLᵀ factorization (`P A Pᵀ = L D Lᵀ`) of a sparse SPD
/// matrix, with a reverse Cuthill–McKee fill-reducing permutation `P`.
#[derive(Debug, Clone)]
pub struct SpdFactor {
    m: usize,
    /// `perm[new] = old` (the RCM order).
    perm: Vec<usize>,
    /// `inv[old] = new`.
    inv: Vec<usize>,
    /// Envelope start column of each permuted row.
    first: Vec<usize>,
    /// `vals[rowptr[i] + (j - first[i])]` is `L[i][j]` for
    /// `first[i] <= j < i` (unit lower triangle, diagonal implicit).
    rowptr: Vec<usize>,
    vals: Vec<f64>,
    /// The diagonal `D`.
    diag: Vec<f64>,
}

impl SpdFactor {
    /// Factor the `m × m` symmetric matrix with diagonal `diag` and
    /// strict off-diagonal entries `offdiag` (each unordered pair `(i,
    /// j, value)` listed once; the symmetric mirror is implied,
    /// duplicates are summed).
    ///
    /// # Errors
    /// [`LinalgError::Shape`] on an out-of-range index;
    /// [`LinalgError::Singular`] when a pivot collapses, i.e. the matrix
    /// is not positive definite.
    pub fn factor(diag: &[f64], offdiag: &[(usize, usize, f64)]) -> Result<Self, LinalgError> {
        let m = diag.len();
        if offdiag.iter().any(|&(i, j, _)| i >= m || j >= m || i == j) {
            return Err(LinalgError::Shape);
        }

        // Adjacency (old labels) for the ordering and the scatter pass.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
        for &(i, j, _) in offdiag {
            adj[i].push(j);
            adj[j].push(i);
        }
        for row in &mut adj {
            row.sort_unstable();
            row.dedup();
        }

        let perm = reverse_cuthill_mckee(m, &adj);
        let mut inv = vec![0usize; m];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }

        // Envelope profile: row i spans columns first[i]..i.
        let mut first: Vec<usize> = (0..m).collect();
        for (new, &old) in perm.iter().enumerate() {
            for &nb in &adj[old] {
                let j = inv[nb];
                if j < new && j < first[new] {
                    first[new] = j;
                }
            }
        }
        let mut rowptr = vec![0usize; m + 1];
        for i in 0..m {
            rowptr[i + 1] = rowptr[i] + (i - first[i]);
        }
        let mut vals = vec![0.0f64; rowptr[m]];
        let mut d = vec![0.0f64; m];

        // Scatter the matrix into the envelope (permuted labels).
        let mut scale = 0.0f64;
        for (old, &v) in diag.iter().enumerate() {
            d[inv[old]] = v;
            scale = scale.max(v.abs());
        }
        for &(i, j, v) in offdiag {
            let (a, b) = (inv[i], inv[j]);
            let (row, col) = (a.max(b), a.min(b));
            vals[rowptr[row] + (col - first[row])] += v;
            scale = scale.max(v.abs());
        }
        let tiny = PIVOT_EPS * scale.max(1.0);

        // In-place envelope LDLᵀ: row i only ever reads finished rows.
        for i in 0..m {
            let fi = first[i];
            let (done, cur) = vals.split_at_mut(rowptr[i]);
            let row_i = &mut cur[..(i - fi)];
            for j in fi..i {
                let fj = first[j];
                let lo = fi.max(fj);
                let row_j = &done[rowptr[j]..rowptr[j + 1]];
                let mut sum = row_i[j - fi];
                for ((&li, &dt), &lj) in row_i[(lo - fi)..(j - fi)]
                    .iter()
                    .zip(&d[lo..j])
                    .zip(&row_j[(lo - fj)..(j - fj)])
                {
                    sum -= li * dt * lj;
                }
                row_i[j - fi] = sum / d[j];
            }
            let mut pivot = d[i];
            for (&l, &dt) in row_i.iter().zip(&d[fi..i]) {
                pivot -= l * l * dt;
            }
            if pivot.abs() <= tiny {
                return Err(LinalgError::Singular);
            }
            d[i] = pivot;
        }

        Ok(Self {
            m,
            perm,
            inv,
            first,
            rowptr,
            vals,
            diag: d,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Solve `A x = b` in place: `b` (original labels) becomes `x`.
    /// `scratch` is reused storage for the permuted vector.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_in_place(&self, b: &mut [f64], scratch: &mut Vec<f64>) {
        assert_eq!(b.len(), self.m, "rhs length mismatch");
        scratch.clear();
        scratch.extend(self.perm.iter().map(|&old| b[old]));
        let y = scratch.as_mut_slice();
        // Forward: L y = P b (unit lower).
        for i in 0..self.m {
            let fi = self.first[i];
            let mut acc = y[i];
            for (&v, &yt) in self.vals[self.rowptr[i]..].iter().zip(&y[fi..i]) {
                acc -= v * yt;
            }
            y[i] = acc;
        }
        // Diagonal.
        for (v, &d) in y.iter_mut().zip(&self.diag) {
            *v /= d;
        }
        // Backward: Lᵀ x = z, swept by columns.
        for i in (0..self.m).rev() {
            let fi = self.first[i];
            let xi = y[i];
            for (yt, &v) in y[fi..i].iter_mut().zip(&self.vals[self.rowptr[i]..]) {
                *yt -= v * xi;
            }
        }
        for (bi, &new) in b.iter_mut().zip(&self.inv) {
            *bi = y[new];
        }
    }
}

/// Deterministic reverse Cuthill–McKee ordering: per component, BFS from
/// a pseudo-peripheral start, visiting neighbours by ascending `(degree,
/// id)`, then reverse the whole order. Returns `perm[new] = old`.
fn reverse_cuthill_mckee(m: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    let degree = |v: usize| adj[v].len();
    let mut order: Vec<usize> = Vec::with_capacity(m);
    let mut visited = vec![false; m];
    let mut queue = std::collections::VecDeque::new();
    let mut nbrs: Vec<usize> = Vec::new();

    for seed in 0..m {
        if visited[seed] {
            continue;
        }
        let start = pseudo_peripheral(seed, adj);
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            nbrs.clear();
            nbrs.extend(adj[u].iter().copied().filter(|&v| !visited[v]));
            nbrs.sort_unstable_by_key(|&v| (degree(v), v));
            for &v in &nbrs {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    order
}

/// Walk to an (approximately) most-eccentric node of `seed`'s component:
/// repeat BFS, jumping to the smallest-degree node of the last level,
/// until the eccentricity stops growing. Deterministic by `(degree, id)`
/// tie-breaks.
fn pseudo_peripheral(seed: usize, adj: &[Vec<usize>]) -> usize {
    let mut start = seed;
    let mut ecc = 0u32;
    loop {
        let (far, far_ecc) = bfs_farthest(start, adj);
        if far_ecc <= ecc {
            return start;
        }
        ecc = far_ecc;
        start = far;
    }
}

fn bfs_farthest(start: usize, adj: &[Vec<usize>]) -> (usize, u32) {
    let mut dist = vec![u32::MAX; adj.len()];
    let mut queue = std::collections::VecDeque::from([start]);
    dist[start] = 0;
    let mut best = (start, 0u32);
    while let Some(u) = queue.pop_front() {
        let d = dist[u];
        // Prefer greater distance, then smaller degree, then smaller id.
        let better = d > best.1
            || (d == best.1
                && (adj[u].len() < adj[best.0].len()
                    || (adj[u].len() == adj[best.0].len() && u < best.0)));
        if better {
            best = (u, d);
        }
        for &v in &adj[u] {
            if dist[v] == u32::MAX {
                dist[v] = d + 1;
                queue.push_back(v);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{solve, Matrix};

    /// Laplacian minor of a path graph 0-1-2-3 grounded at 3.
    fn path_minor() -> (Vec<f64>, Vec<(usize, usize, f64)>) {
        (vec![1.0, 2.0, 2.0], vec![(0, 1, -1.0), (1, 2, -1.0)])
    }

    #[test]
    fn matches_dense_on_path_minor() {
        let (diag, off) = path_minor();
        let f = SpdFactor::factor(&diag, &off).unwrap();
        let mut b = vec![1.0, 0.0, 0.0];
        let mut scratch = Vec::new();
        f.solve_in_place(&mut b, &mut scratch);
        // Dense oracle.
        let mut a = Matrix::zeros(3, 3);
        for (i, &v) in diag.iter().enumerate() {
            *a.get_mut(i, i) = v;
        }
        for &(i, j, v) in &off {
            *a.get_mut(i, j) = v;
            *a.get_mut(j, i) = v;
        }
        let x = solve(a, vec![1.0, 0.0, 0.0]).unwrap();
        for (u, v) in b.iter().zip(&x) {
            assert!((u - v).abs() < 1e-12, "{u} != {v}");
        }
    }

    #[test]
    fn matches_dense_on_random_spd() {
        // Pseudo-random sparse SPD matrix: diagonally dominant with a
        // deterministic sprinkle of off-diagonals.
        let m = 40;
        let mut off = Vec::new();
        for i in 0..m {
            for j in (i + 1)..m {
                if (i * 31 + j * 17) % 7 == 0 {
                    let v = -(1.0 + ((i + j) % 5) as f64 * 0.25);
                    off.push((i, j, v));
                }
            }
        }
        let mut diag = vec![0.5f64; m];
        for &(i, j, v) in &off {
            diag[i] += v.abs();
            diag[j] += v.abs();
        }
        let f = SpdFactor::factor(&diag, &off).unwrap();
        let mut dense = Matrix::zeros(m, m);
        for (i, &v) in diag.iter().enumerate() {
            *dense.get_mut(i, i) = v;
        }
        for &(i, j, v) in &off {
            *dense.get_mut(i, j) = v;
            *dense.get_mut(j, i) = v;
        }
        let rhs: Vec<f64> = (0..m).map(|i| ((i % 9) as f64) - 4.0).collect();
        let want = solve(dense, rhs.clone()).unwrap();
        let mut got = rhs;
        let mut scratch = Vec::new();
        f.solve_in_place(&mut got, &mut scratch);
        for (u, v) in got.iter().zip(&want) {
            assert!((u - v).abs() < 1e-9, "{u} != {v}");
        }
    }

    #[test]
    fn disconnected_minor_is_singular() {
        // Grounded component {0,1} next to a floating component {2,3}
        // whose exact Laplacian block [[1,-1],[-1,1]] is singular.
        let diag = vec![2.0, 1.0, 1.0, 1.0];
        let off = vec![(0, 1, -1.0), (2, 3, -1.0)];
        assert!(matches!(
            SpdFactor::factor(&diag, &off),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn out_of_range_entry_rejected() {
        assert!(matches!(
            SpdFactor::factor(&[1.0, 1.0], &[(0, 5, -1.0)]),
            Err(LinalgError::Shape)
        ));
    }

    #[test]
    fn rcm_orders_every_node_once() {
        let adj = vec![vec![1], vec![0, 2], vec![1], vec![]];
        let mut p = reverse_cuthill_mckee(4, &adj);
        p.sort_unstable();
        assert_eq!(p, vec![0, 1, 2, 3]);
    }
}
