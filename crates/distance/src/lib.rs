#![warn(missing_docs)]

//! The equivalent-distance model of communication cost (§3).
//!
//! Implements the *table of equivalent distances* of Arnau, Orduña, Ruiz &
//! Duato (PDCS'99), the substrate on which the ICPP 2000 scheduling
//! criterion is built. For each pair of switches, only the links lying on
//! minimal routes *supplied by the routing algorithm* are kept, each link is
//! replaced with a 1 Ω resistor, and the equivalent distance is the
//! electrical resistance between the pair.
//!
//! The model captures both the topology and the routing algorithm: paths
//! forbidden by up*/down* routing do not contribute, and path diversity
//! (parallel routes) lowers the effective distance exactly as it raises the
//! usable bandwidth.
//!
//! # Example
//!
//! ```
//! use commsched_topology::designed;
//! use commsched_routing::UpDownRouting;
//! use commsched_distance::equivalent_distance_table;
//!
//! let topo = designed::ring(6, 4);
//! let routing = UpDownRouting::new(&topo, 0).unwrap();
//! let table = equivalent_distance_table(&topo, &routing).unwrap();
//! // The ring's forbidden turn makes 2 -> 4 a 4-link series detour.
//! assert!((table.get(2, 4) - 4.0).abs() < 1e-9);
//! ```

pub mod io;
pub mod linalg;
pub mod repair;
pub mod resistance;
pub mod sparse;
pub mod table;

pub use io::{
    table_from_text, table_from_text_with_report, table_to_text, table_to_text_with_report,
    TableParseError,
};
pub use linalg::{solve, LinalgError, Matrix};
pub use repair::{repair_distance_table, route_key, RepairMemo, RepairOutcome, RouteKey};
pub use resistance::{
    effective_resistance, effective_resistance_weighted, effective_resistance_weighted_in,
    PreparedNetwork, ResistanceError, SolverKind, Workspace,
};
pub use sparse::SpdFactor;
pub use table::{
    eps_to_micros, equivalent_distance_table, equivalent_distance_table_parallel,
    equivalent_distance_table_with, equivalent_distance_table_with_report, hop_distance_table,
    ApproxReport, DistanceTable, SharedDistanceTable, TableError, TableOptions,
    DEFAULT_APPROX_EPS_MICROS,
};
