//! The table of equivalent distances (the paper's `T_N`).

use crate::resistance::{effective_resistance_weighted, ResistanceError, SolverKind, Workspace};
use commsched_routing::Routing;
use commsched_telemetry as telemetry;
use commsched_topology::{LinkId, SwitchId, Topology};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A cheaply clonable, immutable handle to a finished table.
///
/// Long-running consumers (the `commsched-service` distance-table cache)
/// key finished tables by topology fingerprint and hand them to
/// concurrent jobs; sharing an `Arc` makes each hand-off a pointer bump
/// instead of an `N²` copy.
pub type SharedDistanceTable = std::sync::Arc<DistanceTable>;

/// A symmetric `N × N` table of internode distances with zero diagonal.
///
/// `T[i][j]` is the equivalent distance between switches `i` and `j`. The
/// table "does not satisfy the triangular inequality, and thus it does not
/// define a metric space" (§3) — it is a cost measurement, not a metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceTable {
    n: usize,
    /// Row-major full matrix (kept symmetric by construction).
    data: Vec<f64>,
}

impl DistanceTable {
    /// Build from a closure giving the distance for each unordered pair
    /// `i < j`.
    pub fn from_fn<F: FnMut(SwitchId, SwitchId) -> f64>(n: usize, mut f: F) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        Self { n, data }
    }

    /// Number of switches.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between `i` and `j`.
    #[inline]
    pub fn get(&self, i: SwitchId, j: SwitchId) -> f64 {
        self.data[i * self.n + j]
    }

    /// Squared distance between `i` and `j` (the quality functions work on
    /// squared distances throughout).
    #[inline]
    pub fn get_sq(&self, i: SwitchId, j: SwitchId) -> f64 {
        let d = self.get(i, j);
        d * d
    }

    /// Sum of squared distances over all unordered pairs.
    pub fn total_square(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                acc += self.get_sq(i, j);
            }
        }
        acc
    }

    /// Quadratic average over all unordered pairs: `Σ T²_{ij} / (N(N-1)/2)`
    /// — the normalization denominator of the paper's Eq. 2 and Eq. 5.
    ///
    /// Returns 0 for `n < 2`.
    pub fn mean_square(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.total_square() / (self.n * (self.n - 1) / 2) as f64
    }

    /// Maximum off-diagonal entry (0 for `n < 2`).
    pub fn max_distance(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                best = best.max(self.get(i, j));
            }
        }
        best
    }

    /// Row `i` of the table.
    pub fn row(&self, i: SwitchId) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Wrap the finished table in a [`SharedDistanceTable`] handle.
    pub fn into_shared(self) -> SharedDistanceTable {
        std::sync::Arc::new(self)
    }

    /// Overwrite the symmetric pair `(i, j)` — the repair path's patch
    /// primitive.
    pub(crate) fn set_pair(&mut self, i: SwitchId, j: SwitchId, d: f64) {
        self.data[i * self.n + j] = d;
        self.data[j * self.n + i] = d;
    }

    /// Triples `(i, j, k)` with `i < k` violating the triangle inequality
    /// (`T[i][k] > T[i][j] + T[j][k] + tol`).
    ///
    /// The paper remarks (§3) that the table of equivalent distances "does
    /// not satisfy the triangular inequality, and thus it does not define
    /// a metric space" — because every pair's resistance is computed on a
    /// *different* sub-network. This diagnostic makes that concrete; an
    /// up*/down*-routed ring exhibits violations (e.g. the forbidden-turn
    /// detour pair). The table is symmetric, so the mirrored triple
    /// `(k, j, i)` would repeat the same fact; restricting to `i < k`
    /// reports each violation exactly once.
    ///
    /// The scan is `O(N³)` and a large table can violate the inequality
    /// almost everywhere, so the report is capped at
    /// [`TRIANGLE_REPORT_CAP`] triples — diagnostics must not allocate
    /// `O(N³)` memory on a 4096-switch build. Use
    /// [`DistanceTable::triangle_violation_count`] for the exact total
    /// without any allocation.
    pub fn triangle_violations(&self, tol: f64) -> Vec<(SwitchId, SwitchId, SwitchId)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for k in (i + 1)..self.n {
                let direct = self.get(i, k);
                for j in 0..self.n {
                    if j == i || j == k {
                        continue;
                    }
                    if direct > self.get(i, j) + self.get(j, k) + tol {
                        out.push((i, j, k));
                        if out.len() >= TRIANGLE_REPORT_CAP {
                            return out;
                        }
                    }
                }
            }
        }
        out
    }

    /// Exact count of triangle violations (same predicate as
    /// [`DistanceTable::triangle_violations`]) with `O(1)` memory: the
    /// streaming form for large tables where materializing triples would
    /// dominate the build itself.
    pub fn triangle_violation_count(&self, tol: f64) -> u64 {
        let mut count = 0u64;
        for i in 0..self.n {
            for k in (i + 1)..self.n {
                let direct = self.get(i, k);
                for j in 0..self.n {
                    if j != i && j != k && direct > self.get(i, j) + self.get(j, k) + tol {
                        count += 1;
                    }
                }
            }
        }
        count
    }
}

/// Upper bound on the triples materialized by
/// [`DistanceTable::triangle_violations`].
pub const TRIANGLE_REPORT_CAP: usize = 4096;

/// Errors from table construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// Topology and routing disagree on the switch count.
    SizeMismatch {
        /// Switches in the topology.
        topology: usize,
        /// Switches in the router.
        routing: usize,
    },
    /// The resistance solver failed for a pair.
    Resistance {
        /// Source switch.
        src: SwitchId,
        /// Destination switch.
        dst: SwitchId,
        /// Underlying error.
        error: ResistanceError,
    },
    /// Incremental repair got a previous table whose size does not match
    /// the post-fault topology.
    RepairSize {
        /// Switches in the previous table.
        prev: usize,
        /// Switches in the topology.
        topology: usize,
    },
    /// Incremental repair was asked to recompute a pair outside the table.
    BadRepairPair {
        /// Source switch.
        src: SwitchId,
        /// Destination switch.
        dst: SwitchId,
        /// Switches in the table.
        n: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::SizeMismatch { topology, routing } => {
                write!(f, "topology has {topology} switches, routing {routing}")
            }
            TableError::Resistance { src, dst, error } => {
                write!(f, "resistance failed for pair ({src}, {dst}): {error}")
            }
            TableError::RepairSize { prev, topology } => {
                write!(f, "previous table has {prev} switches, topology {topology}")
            }
            TableError::BadRepairPair { src, dst, n } => {
                write!(
                    f,
                    "repair pair ({src}, {dst}) out of range for {n} switches"
                )
            }
        }
    }
}

impl std::error::Error for TableError {}

/// Knobs of the table builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOptions {
    /// Linear solver for the per-pair resistance. Default: the sparse
    /// SPD Cholesky fast path; [`SolverKind::DenseGaussian`] keeps the
    /// original dense elimination as the correctness oracle.
    pub solver: SolverKind,
    /// Worker threads pulling source rows off the shared queue (0 = one
    /// per available CPU). Results are bit-identical for every count.
    pub threads: usize,
    /// Share the compacted circuit between pairs whose minimal-route
    /// link sets hash identically (sparse solver only). Never changes
    /// results — a hit restores byte-for-byte what compaction would
    /// rebuild — only how often the node/edge compaction reruns.
    pub memoize: bool,
    /// Relative-error budget of [`SolverKind::Approximate`] in millionths
    /// (`50_000` = 5%). Kept integral so `TableOptions` stays `Eq` and
    /// can key the service cache. Ignored by the exact solvers.
    pub approx_eps_micros: u32,
}

impl Default for TableOptions {
    fn default() -> Self {
        Self {
            solver: SolverKind::default(),
            threads: 1,
            memoize: true,
            approx_eps_micros: DEFAULT_APPROX_EPS_MICROS,
        }
    }
}

impl TableOptions {
    /// Options for the certified approximate build with relative-error
    /// budget `eps` (e.g. `0.05` for 5%).
    pub fn approximate(eps: f64) -> Self {
        Self {
            solver: SolverKind::Approximate,
            approx_eps_micros: eps_to_micros(eps),
            ..Self::default()
        }
    }

    /// The approximation budget as a plain fraction.
    pub fn approx_eps(&self) -> f64 {
        f64::from(self.approx_eps_micros) / 1e6
    }
}

/// Default approximation budget: 5% relative error.
pub const DEFAULT_APPROX_EPS_MICROS: u32 = 50_000;

/// Convert a relative-error fraction to the integral micros
/// representation used by [`TableOptions::approx_eps_micros`] (and the
/// service cache key). Saturates at `u32::MAX` micros (≈4300× error —
/// far past any useful budget).
pub fn eps_to_micros(eps: f64) -> u32 {
    let micros = (eps * 1e6).round();
    if micros <= 0.0 {
        0
    } else if micros >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        micros as u32
    }
}

/// What the approximate build actually did: the budget, the worst
/// certified relative error among approximated pairs, and how many pairs
/// were answered by bounds vs. escalated to the exact solver.
///
/// The measured error of every approximated entry against the exact
/// table is `≤ err_max` *by construction*: each approximated pair's
/// estimate is the midpoint of a certified interval `[lo, hi]` that
/// contains the exact value, so its true relative error is at most
/// `(hi − lo) / (2·lo)` — exactly the quantity `err_max` maximizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxReport {
    /// The requested budget (fraction, e.g. 0.05).
    pub eps: f64,
    /// Worst certified relative error over all approximated pairs
    /// (0 when every pair was exact).
    pub err_max: f64,
    /// Pairs answered from the certified interval.
    pub pairs_approximated: u64,
    /// Pairs whose interval was too wide and ran the exact solver.
    pub pairs_escalated: u64,
}

/// Telemetry handles for the table builder, resolved once per process.
/// Workers tally locally (plain `u64`s in [`PairTally`]) and flush the
/// totals here when they finish, so the per-pair hot path never touches
/// an atomic.
struct BuildMetrics {
    builds: telemetry::Counter,
    build_ms: telemetry::Histo,
    rows: telemetry::Counter,
    pairs: telemetry::Counter,
    series_path: telemetry::Counter,
    memo_hits: telemetry::Counter,
    memo_misses: telemetry::Counter,
    dense_solves: telemetry::Counter,
    approx_pairs: telemetry::Counter,
    approx_escalations: telemetry::Counter,
    approx_err_max_micros: telemetry::Gauge,
}

fn build_metrics() -> &'static BuildMetrics {
    static METRICS: OnceLock<BuildMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = telemetry::global();
        BuildMetrics {
            builds: r.counter(
                "distance_builds_total",
                "Distance-table builds completed (all solver kinds)",
            ),
            build_ms: r.histogram(
                "distance_build_ms",
                "Wall time of one distance-table build, milliseconds",
            ),
            rows: r.counter(
                "distance_rows_total",
                "Source rows whose route link sets were batch-extracted",
            ),
            pairs: r.counter(
                "distance_pairs_total",
                "Switch pairs whose equivalent distance was computed",
            ),
            series_path: r.counter(
                "distance_series_path_total",
                "Pairs answered by the series-path scan (no linear solve)",
            ),
            memo_hits: r.counter(
                "distance_memo_hits_total",
                "Pairs whose compacted circuit was found in a worker memo",
            ),
            memo_misses: r.counter(
                "distance_memo_misses_total",
                "Pairs that ran circuit compaction + LDL^T solve",
            ),
            dense_solves: r.counter(
                "distance_dense_solves_total",
                "Pairs solved by the dense Gaussian baseline",
            ),
            approx_pairs: r.counter(
                "distance_approx_pairs_total",
                "Pairs answered from a certified resistance interval",
            ),
            approx_escalations: r.counter(
                "distance_approx_escalations_total",
                "Approximate-build pairs escalated to the exact solver",
            ),
            approx_err_max_micros: r.gauge(
                "distance_approx_err_max_micros",
                "Worst certified relative error of the last approximate build, millionths",
            ),
        }
    })
}

/// Per-worker resolution tallies, flushed to [`BuildMetrics`] once per
/// worker (not per pair).
#[derive(Default)]
struct PairTally {
    rows: u64,
    pairs: u64,
    series_path: u64,
    memo_hits: u64,
    memo_misses: u64,
    dense_solves: u64,
    approx_pairs: u64,
    approx_escalations: u64,
    /// Worst certified relative error among this worker's approximated
    /// pairs (not a counter; merged by max across workers).
    approx_err_max: f64,
}

impl PairTally {
    fn flush(&self) {
        if self.pairs == 0 && self.rows == 0 {
            return;
        }
        let m = build_metrics();
        m.rows.add(self.rows);
        m.pairs.add(self.pairs);
        m.series_path.add(self.series_path);
        m.memo_hits.add(self.memo_hits);
        m.memo_misses.add(self.memo_misses);
        m.dense_solves.add(self.dense_solves);
        m.approx_pairs.add(self.approx_pairs);
        m.approx_escalations.add(self.approx_escalations);
    }
}

/// Per-worker cap on memoized circuits. Networks whose pairs all have
/// distinct route sets would otherwise hold one circuit per pair; beyond
/// the cap new sets are solved without being retained. Purely a memory
/// bound — hit or miss, the computed values are identical.
const MEMO_CAP: usize = 1024;

/// A compacted resistor circuit as captured from [`Workspace::circuit`]:
/// the memo value shared between pairs with identical route-link sets.
/// Also the value type of the cross-epoch repair memo (`crate::repair`).
pub(crate) struct CompactCircuit {
    pub(crate) nodes: Vec<SwitchId>,
    pub(crate) edges: Vec<(usize, usize, f64)>,
}

/// Per-switch stamps for the single-scan series-path test.
#[derive(Default)]
pub(crate) struct PathScan {
    stamp: Vec<u32>,
    deg: Vec<u32>,
    mark: u32,
}

/// One scan over `links`: if the route sub-network is a simple path with
/// the terminals at its ends, its resistance is just the series sum of
/// the link resistances — no circuit assembly or solve at all. Returns
/// `None` for any other shape (including empty link sets).
///
/// The tree test `nodes == links + 1` is sound because a minimal-route
/// union is always connected (every link lies on some `a`→`b` route, so
/// every link reaches `a`); a connected graph with that edge count and
/// maximum degree 2 is exactly a simple path. Most up*/down* route
/// unions have this shape, which makes this the hot path of the build.
pub(crate) fn try_series_path(
    topo: &Topology,
    scan: &mut PathScan,
    links: &[LinkId],
    a: SwitchId,
    b: SwitchId,
) -> Option<f64> {
    if links.is_empty() {
        return None;
    }
    let n = topo.num_switches();
    if scan.stamp.len() < n {
        scan.stamp.resize(n, 0);
        scan.deg.resize(n, 0);
    }
    if scan.mark == u32::MAX {
        scan.stamp[..n].fill(0);
        scan.mark = 0;
    }
    scan.mark += 1;
    let mark = scan.mark;
    let mut nodes = 0usize;
    let mut sum_r = 0.0f64;
    let mut path_like = true;
    for &l in links {
        let link = topo.link(l);
        // Heterogeneous link speeds: a slower link resists more.
        sum_r += f64::from(topo.link_slowdown(l));
        for end in [link.a, link.b] {
            if scan.stamp[end] != mark {
                scan.stamp[end] = mark;
                scan.deg[end] = 0;
                nodes += 1;
            }
            scan.deg[end] += 1;
            if scan.deg[end] > 2 {
                path_like = false;
            }
        }
    }
    let terminals_are_endpoints =
        scan.stamp[a] == mark && scan.stamp[b] == mark && scan.deg[a] == 1 && scan.deg[b] == 1;
    if path_like && nodes == links.len() + 1 && terminals_are_endpoints {
        Some(sum_r)
    } else {
        None
    }
}

/// Reusable scratch for the certified resistance interval of
/// [`SolverKind::Approximate`]: stamped global→compact node maps plus
/// BFS/Dijkstra buffers, all reused across pairs so the hot loop never
/// allocates per pair.
#[derive(Default)]
struct ApproxScratch {
    /// Global switch id → stamp of the pair that last touched it.
    stamp: Vec<u32>,
    /// Global switch id → compact index (valid when stamped).
    index: Vec<usize>,
    mark: u32,
    /// Compact adjacency: `adj[u] = (v, resistance, edge index)`. Only
    /// the first `nodes` rows are live for the current pair.
    adj: Vec<Vec<(usize, f64, u32)>>,
    /// Edges consumed by an already-extracted route (route stripping).
    eused: Vec<bool>,
    /// Dijkstra predecessor: `(node, edge index)` on the cheapest route.
    prev: Vec<(usize, u32)>,
    /// BFS level per compact node.
    level: Vec<u32>,
    queue: Vec<usize>,
    /// Dijkstra tentative distances and settled flags.
    dist: Vec<f64>,
    done: Vec<bool>,
    /// Dijkstra frontier, reused across routes and pairs.
    heap: std::collections::BinaryHeap<Frontier>,
    /// Conductance (Σ 1/r) of the BFS cut between levels `d` and `d+1`.
    cut_cond: Vec<f64>,
}

/// Route-stripping cap for the upper bound: paper-style networks are
/// 3-regular, so a terminal has at most 3 edge-disjoint routes; a
/// couple extra passes cover heterogeneous cases without letting a
/// pathological pair spin.
const APPROX_MAX_ROUTES: usize = 6;

/// Dijkstra frontier entry ordered as a min-heap by tentative distance.
#[derive(PartialEq)]
struct Frontier(f64, usize);
impl Eq for Frontier {}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the nearest node.
        other.0.total_cmp(&self.0)
    }
}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl ApproxScratch {
    /// Certified interval `[lo, hi]` bracketing the effective resistance
    /// between `a` and `b` on the sub-network `links`, in
    /// `O(k · E log V)` for `k ≤ APPROX_MAX_ROUTES` routes:
    ///
    /// * `hi` — Rayleigh monotonicity plus node splitting: keep only a
    ///   set of *edge-disjoint* `a`→`b` routes (dropping edges raises
    ///   resistance), then split any shared internal nodes (un-shorting
    ///   also raises it); what is left is `k` parallel resistors, so
    ///   `R ≤ 1 / Σ_i (1 / route_res_i)`. Routes are stripped cheapest
    ///   first (Dijkstra over link resistances, previously used edges
    ///   removed), and stripping stops as soon as the interval already
    ///   satisfies `eps` — the common case pays one Dijkstra.
    /// * `lo` — Nash–Williams: the BFS level cuts `δ(level d → d+1)` are
    ///   edge-disjoint separators of `a` from `b` (an edge never spans
    ///   two BFS levels; same-level edges sit in no cut), so
    ///   `R ≥ Σ_d 1/(Σ_{e ∈ cut_d} 1/r_e)`. Both endpoints' BFS trees
    ///   give valid cuts; the larger bound wins.
    ///
    /// Returns `None` when a terminal is missing or unreachable (the
    /// caller escalates to the exact solver, which reports the error).
    fn pair_bounds(
        &mut self,
        topo: &Topology,
        links: &[LinkId],
        a: SwitchId,
        b: SwitchId,
        eps: f64,
    ) -> Option<(f64, f64)> {
        if links.is_empty() {
            return None;
        }
        let n = topo.num_switches();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.index.resize(n, 0);
        }
        if self.mark == u32::MAX {
            self.stamp[..n].fill(0);
            self.mark = 0;
        }
        self.mark += 1;
        let mark = self.mark;
        let mut nodes = 0usize;
        let mut touch = |scratch: &mut Self, s: SwitchId| -> usize {
            if scratch.stamp[s] == mark {
                scratch.index[s]
            } else {
                scratch.stamp[s] = mark;
                scratch.index[s] = nodes;
                if scratch.adj.len() <= nodes {
                    scratch.adj.push(Vec::new());
                } else {
                    scratch.adj[nodes].clear();
                }
                nodes += 1;
                nodes - 1
            }
        };
        let mut r_min = f64::INFINITY;
        for (e, &l) in links.iter().enumerate() {
            let link = topo.link(l);
            let u = touch(self, link.a);
            let v = touch(self, link.b);
            // Heterogeneous link speeds: a slower link resists more.
            let r = f64::from(topo.link_slowdown(l));
            r_min = r_min.min(r);
            let e = u32::try_from(e).expect("sub-network link count fits u32");
            self.adj[u].push((v, r, e));
            self.adj[v].push((u, r, e));
        }
        if self.stamp[a] != mark || self.stamp[b] != mark {
            return None;
        }
        let (ca, cb) = (self.index[a], self.index[b]);

        // Lower bound: series-compose the BFS level-cut conductances
        // from `a`; the second BFS (from `b`) is deferred until the
        // first route needs it — most pairs bail before then.
        let mut lo = self.level_cut_bound(nodes, ca, cb)?;
        let hops = f64::from(self.level[cb]);
        let max_routes = APPROX_MAX_ROUTES.min(self.adj[ca].len().min(self.adj[cb].len()));

        // Heuristic pre-filter (spends accuracy never, only time): the
        // final upper bound cannot drop below `hops · r_min / max_routes`
        // (every route costs at least the hop distance times the
        // cheapest link, and at most `max_routes` compose in parallel).
        // When even that optimistic interval misses `eps` against this
        // side's cut bound, skip route stripping — the exact solver is
        // barely more expensive than the Dijkstras we avoid. A rare pair
        // the other side's cut bound would have certified escalates too:
        // that costs speed only, never the certificate's honesty.
        let optimistic = (hops * r_min / max_routes as f64).max(lo);
        if (optimistic - lo) / (2.0 * lo) > eps {
            return None;
        }

        // Upper bound: parallel-compose edge-disjoint cheapest routes,
        // stripped one at a time, stopping once `eps` is satisfied.
        self.eused.clear();
        self.eused.resize(links.len(), false);
        let mut cond = 0.0f64;
        let mut hi = f64::INFINITY;
        for route in 0..max_routes {
            let Some(res) = self.strip_cheapest_route(nodes, ca, cb) else {
                break;
            };
            cond += 1.0 / res;
            hi = (1.0 / cond).max(lo);
            if (hi - lo) / (2.0 * lo) <= eps {
                break;
            }
            if route == 0 {
                // Feasibility bail. Later routes are never cheaper than
                // the first (Dijkstra over a shrinking edge set), and at
                // most `min degree` edge-disjoint routes exist, so the
                // final upper bound cannot drop below `res / max_routes`.
                // If even that cannot close the interval to `eps` —
                // with the stronger of both terminals' cut bounds — the
                // certificate is unreachable: escalate without paying
                // for more route stripping.
                let second = self.level_cut_bound(nodes, cb, ca)?;
                lo = lo.max(second);
                hi = hi.max(lo);
                if (hi - lo) / (2.0 * lo) <= eps {
                    break;
                }
                let best = (res / max_routes as f64).max(lo);
                if (best - lo) / (2.0 * lo) > eps {
                    break;
                }
            }
        }
        if !hi.is_finite() {
            return None;
        }
        Some((lo, hi))
    }

    /// Nash–Williams bound from one BFS tree: `Σ_d 1/(Σ_{cut_d} 1/r)`.
    /// `None` when the terminals are disconnected or coincide.
    fn level_cut_bound(&mut self, nodes: usize, from: usize, to: usize) -> Option<f64> {
        const UNSEEN: u32 = u32::MAX;
        self.level.clear();
        self.level.resize(nodes, UNSEEN);
        self.queue.clear();
        self.level[from] = 0;
        self.queue.push(from);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for &(v, _, _) in &self.adj[u] {
                if self.level[v] == UNSEEN {
                    self.level[v] = self.level[u] + 1;
                    self.queue.push(v);
                }
            }
        }
        let lb = self.level[to];
        if lb == UNSEEN || lb == 0 {
            return None;
        }
        self.cut_cond.clear();
        self.cut_cond.resize(lb as usize, 0.0);
        for u in 0..nodes {
            for &(v, r, _) in &self.adj[u] {
                if u < v && self.level[u].abs_diff(self.level[v]) == 1 {
                    let d = self.level[u].min(self.level[v]);
                    if d < lb {
                        self.cut_cond[d as usize] += 1.0 / r;
                    }
                }
            }
        }
        Some(self.cut_cond.iter().map(|&c| 1.0 / c).sum())
    }

    /// Dijkstra over the not-yet-used edges; on success marks the
    /// cheapest route's edges used and returns its summed resistance.
    fn strip_cheapest_route(&mut self, nodes: usize, from: usize, to: usize) -> Option<f64> {
        self.dist.clear();
        self.dist.resize(nodes, f64::INFINITY);
        self.done.clear();
        self.done.resize(nodes, false);
        self.prev.clear();
        self.prev.resize(nodes, (usize::MAX, 0));
        let mut heap = std::mem::take(&mut self.heap);
        heap.clear();
        self.dist[from] = 0.0;
        heap.push(Frontier(0.0, from));
        while let Some(Frontier(d, u)) = heap.pop() {
            if self.done[u] {
                continue;
            }
            self.done[u] = true;
            if u == to {
                break;
            }
            for &(v, r, e) in &self.adj[u] {
                if self.eused[e as usize] {
                    continue;
                }
                let nd = d + r;
                if nd < self.dist[v] {
                    self.dist[v] = nd;
                    self.prev[v] = (u, e);
                    heap.push(Frontier(nd, v));
                }
            }
        }
        self.heap = heap;
        let res = self.dist[to];
        if !res.is_finite() {
            return None;
        }
        let mut u = to;
        while u != from {
            let (p, e) = self.prev[u];
            self.eused[e as usize] = true;
            u = p;
        }
        Some(res)
    }
}

/// One worker's solver state: reusable scratch, the route-set memo, and
/// the current source row's batched link sets.
struct PairSolver<'a> {
    topo: &'a Topology,
    routing: &'a dyn Routing,
    options: TableOptions,
    ws: Workspace,
    scan: PathScan,
    approx: ApproxScratch,
    memo: HashMap<Vec<LinkId>, CompactCircuit>,
    edges: Vec<(SwitchId, SwitchId, f64)>,
    row_links: Vec<Vec<LinkId>>,
    tally: PairTally,
}

impl<'a> PairSolver<'a> {
    fn new(topo: &'a Topology, routing: &'a dyn Routing, options: TableOptions) -> Self {
        Self {
            topo,
            routing,
            options,
            ws: Workspace::new(),
            scan: PathScan::default(),
            approx: ApproxScratch::default(),
            memo: HashMap::new(),
            edges: Vec::new(),
            row_links: Vec::new(),
            tally: PairTally::default(),
        }
    }

    /// Called once per claimed source row. The sparse path extracts the
    /// minimal-route link sets for every destination in one batched pass
    /// (a single forward BFS serves the whole row, into reused buffers);
    /// the dense baseline keeps its original per-pair extraction.
    fn begin_row(&mut self, i: SwitchId) {
        if self.options.solver != SolverKind::DenseGaussian {
            self.routing.minimal_route_links_row(i, &mut self.row_links);
            self.tally.rows += 1;
        }
    }

    fn solve(&mut self, i: SwitchId, j: SwitchId) -> Result<f64, TableError> {
        self.tally.pairs += 1;
        if self.options.solver == SolverKind::DenseGaussian {
            self.tally.dense_solves += 1;
            return pair_resistance(self.topo, self.routing, i, j);
        }
        // Simple-path sub-networks (the common case) are answered by one
        // scan, bypassing the memo: the lookup would cost more than the
        // sum. Memoization stays value-neutral — path pairs skip it in
        // both modes.
        if let Some(r) = try_series_path(self.topo, &mut self.scan, &self.row_links[j], i, j) {
            self.tally.series_path += 1;
            return Ok(r);
        }
        if self.options.solver == SolverKind::Approximate {
            let eps = self.options.approx_eps();
            if let Some((lo, hi)) =
                self.approx
                    .pair_bounds(self.topo, &self.row_links[j], i, j, eps)
            {
                // The exact value is inside [lo, hi]; the midpoint's true
                // relative error is therefore at most (hi - lo) / (2 lo).
                let err = (hi - lo) / (2.0 * lo);
                if err <= eps {
                    self.tally.approx_pairs += 1;
                    if err > self.tally.approx_err_max {
                        self.tally.approx_err_max = err;
                    }
                    return Ok(0.5 * (lo + hi));
                }
            }
            // Interval too wide (or degenerate sub-network): run the
            // exact path below, which keeps the reported bound honest.
            self.tally.approx_escalations += 1;
        }
        let wrap = |error| TableError::Resistance {
            src: i,
            dst: j,
            error,
        };
        let links = &self.row_links[j];
        if self.options.memoize {
            if let Some(c) = self.memo.get(links.as_slice()) {
                self.tally.memo_hits += 1;
                self.ws.load_circuit(&c.nodes, &c.edges);
                return self.ws.solve_compacted(i, j).map_err(wrap);
            }
        }
        self.tally.memo_misses += 1;
        let mut edges = std::mem::take(&mut self.edges);
        edges.clear();
        edges.extend(links.iter().map(|&l| {
            let link = self.topo.link(l);
            // Heterogeneous link speeds: a slower link resists more.
            (link.a, link.b, f64::from(self.topo.link_slowdown(l)))
        }));
        self.ws.compact(&edges);
        self.edges = edges;
        if self.options.memoize && self.memo.len() < MEMO_CAP {
            let (nodes, edges) = self.ws.circuit();
            self.memo.insert(
                links.clone(),
                CompactCircuit {
                    nodes: nodes.to_vec(),
                    edges: edges.to_vec(),
                },
            );
        }
        self.ws.solve_compacted(i, j).map_err(wrap)
    }
}

pub(crate) fn pair_resistance(
    topo: &Topology,
    routing: &dyn Routing,
    i: SwitchId,
    j: SwitchId,
) -> Result<f64, TableError> {
    let links = routing.minimal_route_links(i, j);
    let edges: Vec<(SwitchId, SwitchId, f64)> = links
        .iter()
        .map(|&l| {
            let link = topo.link(l);
            // Heterogeneous link speeds: a slower link resists more.
            (link.a, link.b, f64::from(topo.link_slowdown(l)))
        })
        .collect();
    effective_resistance_weighted(&edges, i, j).map_err(|error| TableError::Resistance {
        src: i,
        dst: j,
        error,
    })
}

fn resolve_threads(threads: usize, units: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    };
    t.clamp(1, units.max(1))
}

/// Build the table of equivalent distances for `topo` under `routing`
/// with explicit [`TableOptions`] (§3 of the paper): for each pair, the
/// links on minimal legal routes form a resistor network whose effective
/// resistance is the entry.
///
/// Workers pull source rows off a shared atomic counter (work stealing),
/// since per-row cost varies with both the row's pair count and the
/// route sub-network sizes. A claimed row `i` extracts the link sets for
/// every destination at once (one BFS per source instead of one scan per
/// pair) and then solves the pairs `(i, j)` for `j > i`. The per-pair
/// computation is deterministic and independent of which worker runs it,
/// so the result is bit-identical across thread counts — and identical
/// whether or not memoization is on.
///
/// # Errors
/// See [`TableError`]. When several pairs fail, the error of the
/// lexicographically lowest pair is returned (matching what a serial
/// scan would hit first).
pub fn equivalent_distance_table_with(
    topo: &Topology,
    routing: &dyn Routing,
    options: TableOptions,
) -> Result<DistanceTable, TableError> {
    equivalent_distance_table_with_report(topo, routing, options).map(|(table, _)| table)
}

/// Shared write target for the build workers: row `i`'s pairs `(i, j)`,
/// `j > i`, are written only by the worker that claimed row `i`, so the
/// unsynchronized stores never alias. Workers write straight into the
/// final upper triangle — no per-worker `O(pairs)` scratch vectors, which
/// at N = 4096 would be ~200 MB of transient entry triples.
struct PairSink {
    ptr: *mut f64,
    n: usize,
}

unsafe impl Sync for PairSink {}

impl PairSink {
    /// # Safety
    /// `(i, j)` must be claimed by exactly one worker for this build.
    unsafe fn set_upper(&self, i: SwitchId, j: SwitchId, d: f64) {
        unsafe { *self.ptr.add(i * self.n + j) = d };
    }
}

/// [`equivalent_distance_table_with`] plus the approximation report:
/// `Some` when `options.solver` is [`SolverKind::Approximate`] (even if
/// every pair ended up exact), `None` for the exact solvers.
///
/// # Errors
/// See [`TableError`].
pub fn equivalent_distance_table_with_report(
    topo: &Topology,
    routing: &dyn Routing,
    options: TableOptions,
) -> Result<(DistanceTable, Option<ApproxReport>), TableError> {
    check_sizes(topo, routing)?;
    let _span = telemetry::Span::enter("distance.build");
    let t0 = Instant::now();
    let n = topo.num_switches();
    // Row n-1 has no pairs `j > i`, so there are n-1 work units.
    let rows = n.saturating_sub(1);
    let threads = resolve_threads(options.threads, rows);

    type Failure = ((SwitchId, SwitchId), TableError);
    /// First (lexicographic) failure plus the worker's approximation
    /// tallies: (err_max, pairs approximated, pairs escalated).
    type WorkerOut = (Option<Failure>, (f64, u64, u64));
    let mut data = vec![0.0f64; n * n];
    let sink = PairSink {
        ptr: data.as_mut_ptr(),
        n,
    };
    let cursor = AtomicUsize::new(0);
    let worker = || -> WorkerOut {
        let mut solver = PairSolver::new(topo, routing, options);
        let mut first_err: Option<Failure> = None;
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= rows {
                break;
            }
            solver.begin_row(i);
            for j in (i + 1)..n {
                match solver.solve(i, j) {
                    // Safety: this worker claimed row i; no other worker
                    // touches (i, j) for j > i.
                    Ok(d) => unsafe { sink.set_upper(i, j, d) },
                    Err(e) => {
                        if first_err.as_ref().is_none_or(|&(p, _)| (i, j) < p) {
                            first_err = Some(((i, j), e));
                        }
                    }
                }
            }
        }
        let approx = (
            solver.tally.approx_err_max,
            solver.tally.approx_pairs,
            solver.tally.approx_escalations,
        );
        solver.tally.flush();
        (first_err, approx)
    };

    let results: Vec<WorkerOut> = if threads == 1 {
        vec![worker()]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };

    let mut fail: Option<Failure> = None;
    let mut err_max = 0.0f64;
    let mut pairs_approximated = 0u64;
    let mut pairs_escalated = 0u64;
    for (err, (worker_err_max, approximated, escalated)) in results {
        if let Some((pair, e)) = err {
            if fail.as_ref().is_none_or(|&(p, _)| pair < p) {
                fail = Some((pair, e));
            }
        }
        err_max = err_max.max(worker_err_max);
        pairs_approximated += approximated;
        pairs_escalated += escalated;
    }
    // Mirror the upper triangle (workers only wrote j > i).
    for i in 0..n {
        for j in (i + 1)..n {
            data[j * n + i] = data[i * n + j];
        }
    }
    let m = build_metrics();
    m.builds.inc();
    m.build_ms.record(t0.elapsed().as_millis() as u64);
    let report = (options.solver == SolverKind::Approximate).then(|| {
        m.approx_err_max_micros.set((err_max * 1e6) as i64);
        ApproxReport {
            eps: options.approx_eps(),
            err_max,
            pairs_approximated,
            pairs_escalated,
        }
    });
    match fail {
        Some((_, e)) => Err(e),
        None => Ok((DistanceTable { n, data }, report)),
    }
}

/// Build the table of equivalent distances with the default options
/// (sparse solver, memoization, one thread).
///
/// # Errors
/// See [`TableError`].
pub fn equivalent_distance_table(
    topo: &Topology,
    routing: &dyn Routing,
) -> Result<DistanceTable, TableError> {
    equivalent_distance_table_with(topo, routing, TableOptions::default())
}

/// Parallel variant of [`equivalent_distance_table`]: `threads` workers
/// pull source rows off a shared work-stealing queue. Produces
/// bit-identical results to the serial build.
///
/// # Errors
/// See [`TableError`].
pub fn equivalent_distance_table_parallel(
    topo: &Topology,
    routing: &dyn Routing,
    threads: usize,
) -> Result<DistanceTable, TableError> {
    equivalent_distance_table_with(
        topo,
        routing,
        TableOptions {
            threads: threads.max(1),
            ..Default::default()
        },
    )
}

/// Plain hop-distance table under the same routing algorithm (the ablation
/// baseline: what you get if you skip the electrical model and use legal
/// route length directly).
pub fn hop_distance_table(routing: &dyn Routing) -> DistanceTable {
    let n = routing.num_switches();
    DistanceTable::from_fn(n, |i, j| f64::from(routing.route_distance(i, j)))
}

fn check_sizes(topo: &Topology, routing: &dyn Routing) -> Result<(), TableError> {
    if topo.num_switches() != routing.num_switches() {
        return Err(TableError::SizeMismatch {
            topology: topo.num_switches(),
            routing: routing.num_switches(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched_routing::{ShortestPathRouting, UpDownRouting};
    use commsched_topology::designed;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn shared_handle_is_a_cheap_alias() {
        let t = designed::line(3, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let shared = equivalent_distance_table(&t, &r).unwrap().into_shared();
        let other = std::sync::Arc::clone(&shared);
        assert!(std::sync::Arc::ptr_eq(&shared, &other));
        // Deref gives the full table API.
        assert_close(other.get(0, 2), 2.0);
    }

    #[test]
    fn line_distances_are_hop_counts() {
        // A line has unique paths: equivalent distance == hop distance.
        let t = designed::line(5, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert_close(table.get(i, j), (i as f64 - j as f64).abs());
            }
        }
    }

    #[test]
    fn parallel_paths_reduce_distance() {
        // Even ring antipodes: two parallel arcs halve the resistance.
        let t = designed::ring(4, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        // 0 <-> 2: two 2-hop arcs in parallel -> 1.
        assert_close(table.get(0, 2), 1.0);
        // Adjacent: single minimal path (the direct link) -> 1.
        assert_close(table.get(0, 1), 1.0);
    }

    #[test]
    fn updown_detour_is_costlier() {
        let t = designed::ring(6, 1);
        let ud = UpDownRouting::new(&t, 0).unwrap();
        let sp = ShortestPathRouting::new(&t).unwrap();
        let t_ud = equivalent_distance_table(&t, &ud).unwrap();
        let t_sp = equivalent_distance_table(&t, &sp).unwrap();
        // The forbidden turn forces 2->4 over the root: 4 series links.
        assert_close(t_ud.get(2, 4), 4.0);
        assert_close(t_sp.get(2, 4), 2.0);
        // Routing constraints can only remove links, never add shorter ones.
        for i in 0..6 {
            for j in 0..6 {
                assert!(t_ud.get(i, j) >= t_sp.get(i, j) - 1e-9);
            }
        }
    }

    #[test]
    fn table_is_symmetric_with_zero_diagonal() {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        for i in 0..24 {
            assert_eq!(table.get(i, i), 0.0);
            for j in 0..24 {
                assert_close(table.get(i, j), table.get(j, i));
            }
        }
    }

    #[test]
    fn resistance_bounded_by_route_distance() {
        let t = designed::mesh(3, 3, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        for i in 0..9 {
            for j in 0..9 {
                if i != j {
                    let d = f64::from(r.route_distance(i, j));
                    assert!(table.get(i, j) <= d + 1e-9);
                    assert!(table.get(i, j) > 0.0);
                }
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let serial = equivalent_distance_table(&t, &r).unwrap();
        for threads in [1, 2, 7, 64] {
            let par = equivalent_distance_table_parallel(&t, &r, threads).unwrap();
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn hop_table_matches_routing() {
        let t = designed::ring(6, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = hop_distance_table(&r);
        assert_close(table.get(2, 4), 4.0);
        assert_close(table.get(1, 2), 1.0);
    }

    #[test]
    fn mean_square_normalization() {
        // 3-node line: distances 1, 1, 2 -> squares 1, 1, 4 -> mean 2.
        let t = designed::line(3, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        assert_close(table.total_square(), 6.0);
        assert_close(table.mean_square(), 2.0);
        assert_close(table.max_distance(), 2.0);
    }

    #[test]
    fn size_mismatch_detected() {
        let t = designed::ring(6, 1);
        let other = designed::ring(5, 1);
        let r = ShortestPathRouting::new(&other).unwrap();
        assert!(matches!(
            equivalent_distance_table(&t, &r),
            Err(TableError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn updown_table_is_not_a_metric() {
        // §3: the ring's forbidden-turn detour makes T(2,4) = 4 while
        // T(2,3) + T(3,4) = 2 — a triangle violation, reported once as
        // (2, 3, 4) (not also as its mirror (4, 3, 2)).
        let t = designed::ring(6, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        let violations = table.triangle_violations(1e-9);
        assert!(
            violations.contains(&(2, 3, 4)),
            "expected the (2,3,4) violation, got {violations:?}"
        );
        assert!(
            !violations.contains(&(4, 3, 2)),
            "mirrored duplicate reported: {violations:?}"
        );
    }

    #[test]
    fn triangle_violations_reported_once() {
        let t = designed::ring(6, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        let violations = table.triangle_violations(1e-9);
        assert!(!violations.is_empty());
        let mut seen = std::collections::HashSet::new();
        for &(i, j, k) in &violations {
            assert!(i < k, "unordered endpoints in ({i}, {j}, {k})");
            // Canonical endpoint order means no triple can recur.
            assert!(seen.insert((i, j, k)), "duplicate ({i}, {j}, {k})");
        }
    }

    #[test]
    fn solver_variants_agree() {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let default = equivalent_distance_table(&t, &r).unwrap();
        let dense = equivalent_distance_table_with(
            &t,
            &r,
            TableOptions {
                solver: SolverKind::DenseGaussian,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..24 {
            for j in 0..24 {
                assert_close(default.get(i, j), dense.get(i, j));
            }
        }
        // Memoization is a pure cache: switching it off is bit-identical.
        let unmemoized = equivalent_distance_table_with(
            &t,
            &r,
            TableOptions {
                memoize: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(default, unmemoized);
    }

    #[test]
    fn unconstrained_tree_table_is_a_metric() {
        // Without routing constraints on a tree, T = hop distance, which
        // IS a metric: no violations.
        let t = designed::line(6, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        assert!(table.triangle_violations(1e-9).is_empty());
    }

    #[test]
    fn approximate_solver_respects_its_certificate() {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let exact = equivalent_distance_table(&t, &r).unwrap();
        for eps in [0.0, 0.05, 0.25, 1.0] {
            let (approx, report) =
                equivalent_distance_table_with_report(&t, &r, TableOptions::approximate(eps))
                    .unwrap();
            let report = report.expect("approximate build reports");
            assert!(report.err_max <= eps + 1e-15, "eps {eps}: {report:?}");
            let mut measured = 0.0f64;
            for i in 0..24 {
                for j in (i + 1)..24 {
                    let rel = (approx.get(i, j) - exact.get(i, j)).abs() / exact.get(i, j);
                    measured = measured.max(rel);
                }
            }
            assert!(
                measured <= report.err_max + 1e-12,
                "eps {eps}: measured {measured} > reported {}",
                report.err_max
            );
            assert!(
                report.pairs_approximated + report.pairs_escalated > 0,
                "non-path pairs exist on the paper network"
            );
        }
        // eps = 0 escalates everything: bit-identical to the exact build.
        let (tight, _) =
            equivalent_distance_table_with_report(&t, &r, TableOptions::approximate(0.0)).unwrap();
        assert_eq!(tight, exact);
    }

    #[test]
    fn approximate_bounds_bracket_parallel_arcs() {
        // Even ring antipodes: two 2-hop arcs in parallel, true R = 1.
        // A loose budget is satisfied by the first stripped route alone
        // (interval [1, 2], midpoint 1.5); a tighter one forces the
        // second route, which closes the interval to [1, 1] — the
        // midpoint *is* the exact value, and nothing escalates.
        let t = designed::ring(4, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let (coarse, rep) =
            equivalent_distance_table_with_report(&t, &r, TableOptions::approximate(0.5)).unwrap();
        assert_close(coarse.get(0, 2), 1.5);
        assert!(rep.unwrap().pairs_approximated >= 2, "both antipode pairs");
        let (fine, rep) =
            equivalent_distance_table_with_report(&t, &r, TableOptions::approximate(0.25)).unwrap();
        assert_close(fine.get(0, 2), 1.0);
        let rep = rep.unwrap();
        assert!(rep.pairs_approximated >= 2, "route stripping tightens");
        assert_eq!(rep.pairs_escalated, 0, "no pair needs the exact solver");
    }

    #[test]
    fn approximate_build_is_thread_deterministic() {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let build = |threads| {
            equivalent_distance_table_with_report(
                &t,
                &r,
                TableOptions {
                    threads,
                    ..TableOptions::approximate(0.25)
                },
            )
            .unwrap()
        };
        let (serial, serial_report) = build(1);
        for threads in [2, 7, 64] {
            let (par, report) = build(threads);
            assert_eq!(serial, par, "threads = {threads}");
            assert_eq!(serial_report, report, "threads = {threads}");
        }
    }

    #[test]
    fn eps_micros_conversions() {
        assert_eq!(eps_to_micros(0.05), 50_000);
        assert_eq!(eps_to_micros(0.0), 0);
        assert_eq!(eps_to_micros(-1.0), 0);
        assert_eq!(eps_to_micros(1e12), u32::MAX);
        let opts = TableOptions::approximate(0.05);
        assert_eq!(opts.solver, SolverKind::Approximate);
        assert!((opts.approx_eps() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn triangle_scan_capped_and_counted() {
        let t = designed::ring(6, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        let listed = table.triangle_violations(1e-9);
        assert_eq!(listed.len() as u64, table.triangle_violation_count(1e-9));
        assert!(listed.len() <= TRIANGLE_REPORT_CAP);
        // A metric table counts zero.
        let line = designed::line(6, 1);
        let sp = ShortestPathRouting::new(&line).unwrap();
        let metric = equivalent_distance_table(&line, &sp).unwrap();
        assert_eq!(metric.triangle_violation_count(1e-9), 0);
    }

    #[test]
    fn build_flushes_telemetry_tallies() {
        let m = build_metrics();
        let builds0 = m.builds.get();
        let pairs0 = m.pairs.get();
        let rows0 = m.rows.get();
        let t = designed::ring(8, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let _ = equivalent_distance_table(&t, &r).unwrap();
        // Other tests run builds concurrently, so assert monotone floors
        // against the snapshot, not exact deltas.
        assert!(m.builds.get() > builds0);
        assert!(m.pairs.get() >= pairs0 + 28, "C(8,2) pairs tallied");
        assert!(m.rows.get() >= rows0 + 7, "n-1 rows extracted");
        assert!(m.build_ms.count() >= 1);
    }

    #[test]
    fn row_accessor() {
        let t = designed::line(3, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        assert_eq!(table.row(0), &[0.0, 1.0, 2.0]);
    }
}
