//! The table of equivalent distances (the paper's `T_N`).

use crate::resistance::{effective_resistance_weighted, ResistanceError};
use commsched_routing::Routing;
use commsched_topology::{SwitchId, Topology};

/// A cheaply clonable, immutable handle to a finished table.
///
/// Long-running consumers (the `commsched-service` distance-table cache)
/// key finished tables by topology fingerprint and hand them to
/// concurrent jobs; sharing an `Arc` makes each hand-off a pointer bump
/// instead of an `N²` copy.
pub type SharedDistanceTable = std::sync::Arc<DistanceTable>;

/// A symmetric `N × N` table of internode distances with zero diagonal.
///
/// `T[i][j]` is the equivalent distance between switches `i` and `j`. The
/// table "does not satisfy the triangular inequality, and thus it does not
/// define a metric space" (§3) — it is a cost measurement, not a metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceTable {
    n: usize,
    /// Row-major full matrix (kept symmetric by construction).
    data: Vec<f64>,
}

impl DistanceTable {
    /// Build from a closure giving the distance for each unordered pair
    /// `i < j`.
    pub fn from_fn<F: FnMut(SwitchId, SwitchId) -> f64>(n: usize, mut f: F) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        Self { n, data }
    }

    /// Number of switches.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between `i` and `j`.
    #[inline]
    pub fn get(&self, i: SwitchId, j: SwitchId) -> f64 {
        self.data[i * self.n + j]
    }

    /// Squared distance between `i` and `j` (the quality functions work on
    /// squared distances throughout).
    #[inline]
    pub fn get_sq(&self, i: SwitchId, j: SwitchId) -> f64 {
        let d = self.get(i, j);
        d * d
    }

    /// Sum of squared distances over all unordered pairs.
    pub fn total_square(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                acc += self.get_sq(i, j);
            }
        }
        acc
    }

    /// Quadratic average over all unordered pairs: `Σ T²_{ij} / (N(N-1)/2)`
    /// — the normalization denominator of the paper's Eq. 2 and Eq. 5.
    ///
    /// Returns 0 for `n < 2`.
    pub fn mean_square(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.total_square() / (self.n * (self.n - 1) / 2) as f64
    }

    /// Maximum off-diagonal entry (0 for `n < 2`).
    pub fn max_distance(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                best = best.max(self.get(i, j));
            }
        }
        best
    }

    /// Row `i` of the table.
    pub fn row(&self, i: SwitchId) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Wrap the finished table in a [`SharedDistanceTable`] handle.
    pub fn into_shared(self) -> SharedDistanceTable {
        std::sync::Arc::new(self)
    }

    /// Triples `(i, j, k)` violating the triangle inequality
    /// (`T[i][k] > T[i][j] + T[j][k] + tol`).
    ///
    /// The paper remarks (§3) that the table of equivalent distances "does
    /// not satisfy the triangular inequality, and thus it does not define
    /// a metric space" — because every pair's resistance is computed on a
    /// *different* sub-network. This diagnostic makes that concrete; an
    /// up*/down*-routed ring exhibits violations (e.g. the forbidden-turn
    /// detour pair).
    pub fn triangle_violations(&self, tol: f64) -> Vec<(SwitchId, SwitchId, SwitchId)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for k in 0..self.n {
                if i == k {
                    continue;
                }
                let direct = self.get(i, k);
                for j in 0..self.n {
                    if j == i || j == k {
                        continue;
                    }
                    if direct > self.get(i, j) + self.get(j, k) + tol {
                        out.push((i, j, k));
                    }
                }
            }
        }
        out
    }
}

/// Errors from table construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// Topology and routing disagree on the switch count.
    SizeMismatch {
        /// Switches in the topology.
        topology: usize,
        /// Switches in the router.
        routing: usize,
    },
    /// The resistance solver failed for a pair.
    Resistance {
        /// Source switch.
        src: SwitchId,
        /// Destination switch.
        dst: SwitchId,
        /// Underlying error.
        error: ResistanceError,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::SizeMismatch { topology, routing } => {
                write!(f, "topology has {topology} switches, routing {routing}")
            }
            TableError::Resistance { src, dst, error } => {
                write!(f, "resistance failed for pair ({src}, {dst}): {error}")
            }
        }
    }
}

impl std::error::Error for TableError {}

fn pair_resistance(
    topo: &Topology,
    routing: &dyn Routing,
    i: SwitchId,
    j: SwitchId,
) -> Result<f64, TableError> {
    let links = routing.minimal_route_links(i, j);
    let edges: Vec<(SwitchId, SwitchId, f64)> = links
        .iter()
        .map(|&l| {
            let link = topo.link(l);
            // Heterogeneous link speeds: a slower link resists more.
            (link.a, link.b, f64::from(topo.link_slowdown(l)))
        })
        .collect();
    effective_resistance_weighted(&edges, i, j).map_err(|error| TableError::Resistance {
        src: i,
        dst: j,
        error,
    })
}

/// Build the table of equivalent distances for `topo` under `routing`
/// (§3 of the paper): for each pair, the links on minimal legal routes form
/// a unit-resistor network whose effective resistance is the entry.
///
/// # Errors
/// See [`TableError`].
pub fn equivalent_distance_table(
    topo: &Topology,
    routing: &dyn Routing,
) -> Result<DistanceTable, TableError> {
    check_sizes(topo, routing)?;
    let n = topo.num_switches();
    let mut result = Ok(());
    let table = DistanceTable::from_fn(n, |i, j| match pair_resistance(topo, routing, i, j) {
        Ok(d) => d,
        Err(e) => {
            if result.is_ok() {
                result = Err(e);
            }
            f64::NAN
        }
    });
    result.map(|()| table)
}

/// Parallel variant of [`equivalent_distance_table`], splitting the pair
/// list across `threads` OS threads. Produces bit-identical results to the
/// serial build.
///
/// # Errors
/// See [`TableError`].
pub fn equivalent_distance_table_parallel(
    topo: &Topology,
    routing: &dyn Routing,
    threads: usize,
) -> Result<DistanceTable, TableError> {
    check_sizes(topo, routing)?;
    let n = topo.num_switches();
    let pairs: Vec<(SwitchId, SwitchId)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let threads = threads.max(1).min(pairs.len().max(1));
    let chunk = pairs.len().div_ceil(threads);
    type PairChunk = Vec<((SwitchId, SwitchId), f64)>;
    let results: Vec<Result<PairChunk, TableError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk.max(1))
            .map(|slice| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .map(|&(i, j)| pair_resistance(topo, routing, i, j).map(|d| ((i, j), d)))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut data = vec![0.0; n * n];
    for res in results {
        for ((i, j), d) in res? {
            data[i * n + j] = d;
            data[j * n + i] = d;
        }
    }
    Ok(DistanceTable { n, data })
}

/// Plain hop-distance table under the same routing algorithm (the ablation
/// baseline: what you get if you skip the electrical model and use legal
/// route length directly).
pub fn hop_distance_table(routing: &dyn Routing) -> DistanceTable {
    let n = routing.num_switches();
    DistanceTable::from_fn(n, |i, j| f64::from(routing.route_distance(i, j)))
}

fn check_sizes(topo: &Topology, routing: &dyn Routing) -> Result<(), TableError> {
    if topo.num_switches() != routing.num_switches() {
        return Err(TableError::SizeMismatch {
            topology: topo.num_switches(),
            routing: routing.num_switches(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched_routing::{ShortestPathRouting, UpDownRouting};
    use commsched_topology::designed;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn shared_handle_is_a_cheap_alias() {
        let t = designed::line(3, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let shared = equivalent_distance_table(&t, &r).unwrap().into_shared();
        let other = std::sync::Arc::clone(&shared);
        assert!(std::sync::Arc::ptr_eq(&shared, &other));
        // Deref gives the full table API.
        assert_close(other.get(0, 2), 2.0);
    }

    #[test]
    fn line_distances_are_hop_counts() {
        // A line has unique paths: equivalent distance == hop distance.
        let t = designed::line(5, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert_close(table.get(i, j), (i as f64 - j as f64).abs());
            }
        }
    }

    #[test]
    fn parallel_paths_reduce_distance() {
        // Even ring antipodes: two parallel arcs halve the resistance.
        let t = designed::ring(4, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        // 0 <-> 2: two 2-hop arcs in parallel -> 1.
        assert_close(table.get(0, 2), 1.0);
        // Adjacent: single minimal path (the direct link) -> 1.
        assert_close(table.get(0, 1), 1.0);
    }

    #[test]
    fn updown_detour_is_costlier() {
        let t = designed::ring(6, 1);
        let ud = UpDownRouting::new(&t, 0).unwrap();
        let sp = ShortestPathRouting::new(&t).unwrap();
        let t_ud = equivalent_distance_table(&t, &ud).unwrap();
        let t_sp = equivalent_distance_table(&t, &sp).unwrap();
        // The forbidden turn forces 2->4 over the root: 4 series links.
        assert_close(t_ud.get(2, 4), 4.0);
        assert_close(t_sp.get(2, 4), 2.0);
        // Routing constraints can only remove links, never add shorter ones.
        for i in 0..6 {
            for j in 0..6 {
                assert!(t_ud.get(i, j) >= t_sp.get(i, j) - 1e-9);
            }
        }
    }

    #[test]
    fn table_is_symmetric_with_zero_diagonal() {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        for i in 0..24 {
            assert_eq!(table.get(i, i), 0.0);
            for j in 0..24 {
                assert_close(table.get(i, j), table.get(j, i));
            }
        }
    }

    #[test]
    fn resistance_bounded_by_route_distance() {
        let t = designed::mesh(3, 3, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        for i in 0..9 {
            for j in 0..9 {
                if i != j {
                    let d = f64::from(r.route_distance(i, j));
                    assert!(table.get(i, j) <= d + 1e-9);
                    assert!(table.get(i, j) > 0.0);
                }
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let serial = equivalent_distance_table(&t, &r).unwrap();
        for threads in [1, 2, 7, 64] {
            let par = equivalent_distance_table_parallel(&t, &r, threads).unwrap();
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn hop_table_matches_routing() {
        let t = designed::ring(6, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = hop_distance_table(&r);
        assert_close(table.get(2, 4), 4.0);
        assert_close(table.get(1, 2), 1.0);
    }

    #[test]
    fn mean_square_normalization() {
        // 3-node line: distances 1, 1, 2 -> squares 1, 1, 4 -> mean 2.
        let t = designed::line(3, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        assert_close(table.total_square(), 6.0);
        assert_close(table.mean_square(), 2.0);
        assert_close(table.max_distance(), 2.0);
    }

    #[test]
    fn size_mismatch_detected() {
        let t = designed::ring(6, 1);
        let other = designed::ring(5, 1);
        let r = ShortestPathRouting::new(&other).unwrap();
        assert!(matches!(
            equivalent_distance_table(&t, &r),
            Err(TableError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn updown_table_is_not_a_metric() {
        // §3: the ring's forbidden-turn detour makes T(2,4) = 4 while
        // T(2,3) + T(3,4) = 2 — a triangle violation.
        let t = designed::ring(6, 1);
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        let violations = table.triangle_violations(1e-9);
        assert!(
            violations.contains(&(2, 3, 4)),
            "expected the (2,3,4) violation, got {violations:?}"
        );
    }

    #[test]
    fn unconstrained_tree_table_is_a_metric() {
        // Without routing constraints on a tree, T = hop distance, which
        // IS a metric: no violations.
        let t = designed::line(6, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        assert!(table.triangle_violations(1e-9).is_empty());
    }

    #[test]
    fn row_accessor() {
        let t = designed::line(3, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        assert_eq!(table.row(0), &[0.0, 1.0, 2.0]);
    }
}
