//! Property tests for the resistance model and the linear solver.

use commsched_distance::{
    effective_resistance, equivalent_distance_table, equivalent_distance_table_parallel,
    equivalent_distance_table_with, equivalent_distance_table_with_report, solve, Matrix,
    SolverKind, TableOptions,
};
use commsched_routing::{ShortestPathRouting, UpDownRouting};
use commsched_topology::{random_regular, RandomTopologyConfig, Topology, TopologyBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random labelled tree on `n` nodes via a random attachment sequence.
fn random_tree(n: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (1..n).map(|v| (v, rng.gen_range(0..v))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On a tree, every pair has a unique path, so the effective
    /// resistance equals the hop distance exactly.
    #[test]
    fn tree_resistance_equals_path_length(
        seed in any::<u64>(),
        n in 2usize..12,
    ) {
        let edges = random_tree(n, seed);
        let topo = TopologyBuilder::new(n, 1)
            .links(edges.iter().copied())
            .build()
            .unwrap();
        let routing = ShortestPathRouting::new(&topo).unwrap();
        let table = equivalent_distance_table(&topo, &routing).unwrap();
        for i in 0..n {
            let hops = topo.bfs_distances(i);
            for (j, &h) in hops.iter().enumerate() {
                prop_assert!((table.get(i, j) - f64::from(h)).abs() < 1e-9);
            }
        }
    }

    /// Effective resistance is symmetric and satisfies the triangle
    /// inequality *on a fixed network* (it is a metric there; the paper's
    /// point is that the per-pair sub-network construction breaks it).
    #[test]
    fn resistance_on_fixed_network_is_metric(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random connected graph: tree plus a few extra edges.
        let n = 8;
        let mut edges = random_tree(n, seed);
        for _ in 0..4 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !edges.contains(&(a.max(b), a.min(b))) && !edges.contains(&(a.min(b), a.max(b))) {
                edges.push((a, b));
            }
        }
        edges.sort_unstable_by_key(|&(a, b)| (a.min(b), a.max(b)));
        edges.dedup_by_key(|&mut (a, b)| (a.min(b), a.max(b)));
        let r = |i: usize, j: usize| effective_resistance(&edges, i, j).unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((r(i, j) - r(j, i)).abs() < 1e-9);
                for k in 0..n {
                    prop_assert!(r(i, k) <= r(i, j) + r(j, k) + 1e-9);
                }
            }
        }
    }

    /// Adding an edge to the network can only lower (or keep) the
    /// effective resistance between any pair — Rayleigh monotonicity.
    #[test]
    fn rayleigh_monotonicity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 7;
        let base = random_tree(n, seed);
        let a = rng.gen_range(0..n);
        let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
        let mut extended = base.clone();
        extended.push((a, b));
        for i in 0..n {
            for j in 0..n {
                let before = effective_resistance(&base, i, j).unwrap();
                let after = effective_resistance(&extended, i, j).unwrap();
                prop_assert!(after <= before + 1e-9);
            }
        }
    }

    /// The solver really solves: random diagonally dominant systems
    /// verify `A x = b`.
    #[test]
    fn solver_satisfies_system(
        seed in any::<u64>(),
        n in 1usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                let v = rng.gen_range(-1.0..1.0);
                *a.get_mut(i, j) = v;
                row_sum += v.abs();
            }
            *a.get_mut(i, i) += row_sum + 1.0; // strict dominance
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let x = solve(a.clone(), b.clone()).unwrap();
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }
}

/// Draw a random paper-style topology (3-regular, 4 hosts/switch).
fn random_topology(switches: usize, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    random_regular(RandomTopologyConfig::paper(switches), &mut rng).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sparse Cholesky fast path agrees with the dense Gaussian
    /// oracle to 1e-9 on every pair of a random topology.
    #[test]
    fn sparse_matches_dense_oracle_on_random_topologies(
        seed in any::<u64>(),
        switches in prop_oneof![Just(8usize), Just(12), Just(16)],
    ) {
        let topo = random_topology(switches, seed);
        let routing = UpDownRouting::new(&topo, 0).unwrap();
        let sparse = equivalent_distance_table_with(
            &topo,
            &routing,
            TableOptions { solver: SolverKind::SparseCholesky, ..Default::default() },
        )
        .unwrap();
        let dense = equivalent_distance_table_with(
            &topo,
            &routing,
            TableOptions { solver: SolverKind::DenseGaussian, ..Default::default() },
        )
        .unwrap();
        for i in 0..switches {
            for j in 0..switches {
                let (s, d) = (sparse.get(i, j), dense.get(i, j));
                prop_assert!((s - d).abs() < 1e-9, "({i},{j}): sparse {s} vs dense {d}");
            }
        }
    }

    /// The work-stealing parallel build is bit-identical to the serial
    /// build for every thread count, including more threads than pairs.
    #[test]
    fn parallel_build_bit_identical_to_serial(
        seed in any::<u64>(),
        switches in prop_oneof![Just(8usize), Just(12), Just(16)],
    ) {
        let topo = random_topology(switches, seed);
        let routing = UpDownRouting::new(&topo, 0).unwrap();
        let serial = equivalent_distance_table(&topo, &routing).unwrap();
        for threads in [1usize, 2, 7, 64] {
            let par = equivalent_distance_table_parallel(&topo, &routing, threads).unwrap();
            prop_assert_eq!(&serial, &par, "threads = {}", threads);
        }
    }

    /// The approximate build's certificate is honest: on random
    /// topologies, every entry's measured relative error against the
    /// exact table is at most the reported `err_max`, which in turn
    /// stays within the requested budget.
    #[test]
    fn approximate_table_error_within_certified_bound(
        seed in any::<u64>(),
        switches in prop_oneof![Just(8usize), Just(12), Just(16), Just(24)],
        eps_micros in prop_oneof![Just(20_000u32), Just(50_000), Just(100_000)],
    ) {
        let topo = random_topology(switches, seed);
        let routing = UpDownRouting::new(&topo, 0).unwrap();
        let exact = equivalent_distance_table(&topo, &routing).unwrap();
        let (approx, report) = equivalent_distance_table_with_report(
            &topo,
            &routing,
            TableOptions {
                solver: SolverKind::Approximate,
                approx_eps_micros: eps_micros,
                ..Default::default()
            },
        )
        .unwrap();
        let report = report.expect("approximate build must report");
        let eps = f64::from(eps_micros) / 1e6;
        prop_assert!(report.err_max <= eps + 1e-12,
            "reported err_max {} above budget {}", report.err_max, eps);
        let mut measured: f64 = 0.0;
        for i in 0..switches {
            for j in 0..switches {
                if i == j { continue; }
                let e = exact.get(i, j);
                let rel = (approx.get(i, j) - e).abs() / e;
                measured = measured.max(rel);
            }
        }
        prop_assert!(measured <= report.err_max + 1e-12,
            "measured error {} above certificate {}", measured, report.err_max);
    }
}

#[test]
fn parallel_resistor_law() {
    // k parallel 2-hop paths between 0 and 1: R = 2/k.
    for k in 1..=6usize {
        let mut edges = Vec::new();
        for p in 0..k {
            let mid = 2 + p;
            edges.push((0, mid));
            edges.push((mid, 1));
        }
        let r = effective_resistance(&edges, 0, 1).unwrap();
        assert!((r - 2.0 / k as f64).abs() < 1e-9, "k={k}: {r}");
    }
}
