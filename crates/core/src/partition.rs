//! Network partitions: the assignment of switches to clusters.
//!
//! Under the paper's simplifying assumptions (one process per processor,
//! logical clusters sized as integer multiples of a switch's host count),
//! a mapping of processes to processors is fully described by a *network
//! partition*: which cluster each switch serves. [`Partition`] is that
//! object; the process-level view lives in [`crate::mapping`].

use commsched_topology::SwitchId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Index of a cluster within a partition.
pub type ClusterId = usize;

/// Errors raised when constructing a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// `assign` was empty.
    Empty,
    /// A cluster id in `assign` was `>= num_clusters`.
    ClusterOutOfRange {
        /// The switch with the bad assignment.
        switch: SwitchId,
        /// The offending cluster id.
        cluster: ClusterId,
        /// Declared number of clusters.
        num_clusters: usize,
    },
    /// Some cluster has no switches.
    EmptyCluster(ClusterId),
    /// Cluster size list does not sum to the number of switches.
    SizesMismatch {
        /// Sum of the requested sizes.
        total: usize,
        /// Number of switches to partition.
        switches: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Empty => write!(f, "empty partition"),
            PartitionError::ClusterOutOfRange {
                switch,
                cluster,
                num_clusters,
            } => write!(
                f,
                "switch {switch} assigned to cluster {cluster} (only {num_clusters} clusters)"
            ),
            PartitionError::EmptyCluster(c) => write!(f, "cluster {c} is empty"),
            PartitionError::SizesMismatch { total, switches } => {
                write!(f, "cluster sizes sum to {total}, expected {switches}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A partition of `N` switches into `M` non-empty clusters.
///
/// # Example
///
/// ```
/// use commsched_core::Partition;
///
/// let p = Partition::from_clusters(&[vec![0, 1], vec![2, 3]]).unwrap();
/// assert_eq!(p.cluster_of(2), 1);
/// assert_eq!(p.intra_pairs(), 2);
/// assert_eq!(p.to_string(), "(0,1) (2,3)"); // the paper's Figure-2 format
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Partition {
    assign: Vec<ClusterId>,
    num_clusters: usize,
}

impl Partition {
    /// Build from a per-switch cluster assignment.
    ///
    /// # Errors
    /// See [`PartitionError`].
    pub fn new(assign: Vec<ClusterId>, num_clusters: usize) -> Result<Self, PartitionError> {
        if assign.is_empty() {
            return Err(PartitionError::Empty);
        }
        let mut seen = vec![false; num_clusters];
        for (switch, &c) in assign.iter().enumerate() {
            if c >= num_clusters {
                return Err(PartitionError::ClusterOutOfRange {
                    switch,
                    cluster: c,
                    num_clusters,
                });
            }
            seen[c] = true;
        }
        if let Some(c) = seen.iter().position(|&s| !s) {
            return Err(PartitionError::EmptyCluster(c));
        }
        Ok(Self {
            assign,
            num_clusters,
        })
    }

    /// Build from explicit cluster member lists.
    ///
    /// # Errors
    /// [`PartitionError::Empty`] if there are no switches;
    /// [`PartitionError::EmptyCluster`] if a member list is empty. Member
    /// lists must cover `0..N` exactly once; violations are reported as
    /// [`PartitionError::SizesMismatch`].
    pub fn from_clusters(clusters: &[Vec<SwitchId>]) -> Result<Self, PartitionError> {
        let total: usize = clusters.iter().map(Vec::len).sum();
        if total == 0 {
            return Err(PartitionError::Empty);
        }
        if let Some(empty) = clusters.iter().position(Vec::is_empty) {
            return Err(PartitionError::EmptyCluster(empty));
        }
        let mut assign = vec![usize::MAX; total];
        for (c, members) in clusters.iter().enumerate() {
            for &s in members {
                if s >= total || assign[s] != usize::MAX {
                    return Err(PartitionError::SizesMismatch {
                        total,
                        switches: assign.len(),
                    });
                }
                assign[s] = c;
            }
        }
        Self::new(assign, clusters.len())
    }

    /// Uniformly random partition with the given cluster sizes.
    ///
    /// This is the paper's "random mapping" baseline (the `R_i` labels of
    /// Figures 3 and 5).
    ///
    /// # Errors
    /// [`PartitionError::SizesMismatch`] if the sizes don't sum to
    /// `num_switches`; [`PartitionError::EmptyCluster`] on a zero size.
    pub fn random<R: Rng + ?Sized>(
        num_switches: usize,
        sizes: &[usize],
        rng: &mut R,
    ) -> Result<Self, PartitionError> {
        let total: usize = sizes.iter().sum();
        if total != num_switches {
            return Err(PartitionError::SizesMismatch {
                total,
                switches: num_switches,
            });
        }
        if let Some(c) = sizes.iter().position(|&s| s == 0) {
            return Err(PartitionError::EmptyCluster(c));
        }
        let mut switches: Vec<SwitchId> = (0..num_switches).collect();
        switches.shuffle(rng);
        let mut assign = vec![0; num_switches];
        let mut cursor = 0;
        for (c, &size) in sizes.iter().enumerate() {
            for &s in &switches[cursor..cursor + size] {
                assign[s] = c;
            }
            cursor += size;
        }
        Self::new(assign, sizes.len())
    }

    /// Balanced random partition: `clusters` clusters of `n / clusters`
    /// switches each.
    ///
    /// # Errors
    /// [`PartitionError::SizesMismatch`] if `clusters` does not divide `n`.
    pub fn random_balanced<R: Rng + ?Sized>(
        num_switches: usize,
        clusters: usize,
        rng: &mut R,
    ) -> Result<Self, PartitionError> {
        if clusters == 0 || !num_switches.is_multiple_of(clusters) {
            return Err(PartitionError::SizesMismatch {
                total: num_switches,
                switches: num_switches,
            });
        }
        let sizes = vec![num_switches / clusters; clusters];
        Self::random(num_switches, &sizes, rng)
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.assign.len()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Cluster of switch `s`.
    #[inline]
    pub fn cluster_of(&self, s: SwitchId) -> ClusterId {
        self.assign[s]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[ClusterId] {
        &self.assign
    }

    /// Size of each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.num_clusters];
        for &c in &self.assign {
            sizes[c] += 1;
        }
        sizes
    }

    /// Members of each cluster, sorted.
    pub fn clusters(&self) -> Vec<Vec<SwitchId>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (s, &c) in self.assign.iter().enumerate() {
            out[c].push(s);
        }
        out
    }

    /// Total number of intracluster unordered pairs
    /// (`Σ xᵢ(xᵢ−1)/2`, Eq. 3 of the paper).
    pub fn intra_pairs(&self) -> usize {
        self.sizes().iter().map(|&x| x * (x - 1) / 2).sum()
    }

    /// Total number of intercluster unordered pairs.
    pub fn inter_pairs(&self) -> usize {
        let n = self.num_switches();
        n * (n - 1) / 2 - self.intra_pairs()
    }

    /// Swap the cluster assignments of switches `a` and `b` in place.
    ///
    /// # Panics
    /// Panics (debug) if the two switches are in the same cluster — such a
    /// swap is a no-op the search must never propose.
    pub fn swap(&mut self, a: SwitchId, b: SwitchId) {
        debug_assert_ne!(
            self.assign[a], self.assign[b],
            "swap within a cluster is a no-op"
        );
        self.assign.swap(a, b);
    }

    /// Canonical relabeling: clusters renumbered by their smallest member.
    /// Two partitions that differ only in cluster labels canonicalize to
    /// the same value — used to compare search results with ground truth.
    pub fn canonical(&self) -> Partition {
        let mut first_seen: Vec<Option<ClusterId>> = vec![None; self.num_clusters];
        let mut next = 0;
        let mut assign = Vec::with_capacity(self.assign.len());
        for &c in &self.assign {
            let label = *first_seen[c].get_or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            assign.push(label);
        }
        Partition {
            assign,
            num_clusters: self.num_clusters,
        }
    }

    /// `true` when both partitions induce the same grouping, ignoring
    /// cluster labels.
    pub fn same_grouping(&self, other: &Partition) -> bool {
        self.num_switches() == other.num_switches() && self.canonical() == other.canonical()
    }
}

impl std::fmt::Display for Partition {
    /// Formats like the paper's Figure 2: `(5,6,8,15) (0,1,11,12) ...`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, members) in self.clusters().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "(")?;
            for (k, s) in members.iter().enumerate() {
                if k > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_validates() {
        assert!(Partition::new(vec![0, 1, 0, 1], 2).is_ok());
        assert_eq!(
            Partition::new(vec![], 0).unwrap_err(),
            PartitionError::Empty
        );
        assert!(matches!(
            Partition::new(vec![0, 2], 2).unwrap_err(),
            PartitionError::ClusterOutOfRange {
                switch: 1,
                cluster: 2,
                ..
            }
        ));
        assert_eq!(
            Partition::new(vec![0, 0], 2).unwrap_err(),
            PartitionError::EmptyCluster(1)
        );
    }

    #[test]
    fn from_clusters_roundtrip() {
        let p = Partition::from_clusters(&[vec![0, 3], vec![1, 2]]).unwrap();
        assert_eq!(p.assignment(), &[0, 1, 1, 0]);
        assert_eq!(p.clusters(), vec![vec![0, 3], vec![1, 2]]);
    }

    #[test]
    fn from_clusters_rejects_overlap_and_gap() {
        assert!(Partition::from_clusters(&[vec![0, 1], vec![1, 2]]).is_err());
        assert!(Partition::from_clusters(&[vec![0, 1], vec![3, 4]]).is_err());
        assert!(Partition::from_clusters(&[vec![0], vec![]]).is_err());
    }

    #[test]
    fn random_respects_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Partition::random(10, &[4, 3, 3], &mut rng).unwrap();
        assert_eq!(p.sizes(), vec![4, 3, 3]);
        assert_eq!(p.intra_pairs(), 6 + 3 + 3);
        assert_eq!(p.inter_pairs(), 45 - 12);
    }

    #[test]
    fn random_rejects_bad_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Partition::random(10, &[4, 4], &mut rng).is_err());
        assert!(Partition::random(4, &[4, 0], &mut rng).is_err());
        assert!(Partition::random_balanced(10, 3, &mut rng).is_err());
        assert!(Partition::random_balanced(10, 0, &mut rng).is_err());
    }

    #[test]
    fn random_balanced_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = Partition::random_balanced(16, 4, &mut rng).unwrap();
        assert_eq!(p.sizes(), vec![4; 4]);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = Partition::random_balanced(16, 4, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = Partition::random_balanced(16, 4, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn swap_exchanges_assignments() {
        let mut p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        p.swap(1, 2);
        assert_eq!(p.assignment(), &[0, 1, 0, 1]);
        assert_eq!(p.sizes(), vec![2, 2]);
    }

    #[test]
    fn canonical_ignores_labels() {
        let a = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        let b = Partition::new(vec![1, 1, 0, 0], 2).unwrap();
        assert_ne!(a, b);
        assert!(a.same_grouping(&b));
        let c = Partition::new(vec![0, 1, 0, 1], 2).unwrap();
        assert!(!a.same_grouping(&c));
    }

    #[test]
    fn display_matches_paper_figure_style() {
        let p = Partition::from_clusters(&[vec![0, 1], vec![2, 3]]).unwrap();
        assert_eq!(p.to_string(), "(0,1) (2,3)");
    }
}
