//! Incremental evaluation of `F_G` under pairwise swaps.
//!
//! The tabu search evaluates every cross-cluster swap at every iteration —
//! `O(N²)` candidate moves. Recomputing Eq. 2 from scratch per move costs
//! `O(N²)` each, which the search cannot afford. [`SwapEvaluator`] caches,
//! for every switch `v` and cluster `c`, the partial sum
//! `S(v, c) = Σ_{u ∈ c} T²(v, u)`, so that
//!
//! * the `F_G` change of a candidate swap is `O(1)`,
//! * applying a swap updates the cache in `O(N)`.
//!
//! Since swaps never change cluster *sizes*, the normalization of Eq. 2
//! (intracluster pair count × quadratic average distance) is constant and
//! cached once.

use crate::partition::Partition;
use crate::quality::intra_square_sum;
use commsched_distance::DistanceTable;
use commsched_topology::SwitchId;

/// An objective that a swap-based local search can optimize: a value, an
/// O(1)-ish delta for a candidate cross-cluster swap, and an in-place
/// apply. Implemented by [`SwapEvaluator`] (the paper's `F_G`) and
/// [`crate::weighted::WeightedSwapEvaluator`] (per-application traffic
/// weights).
pub trait SwapObjective {
    /// Current objective value (lower is better).
    fn value(&self) -> f64;

    /// Objective change if switches `a` and `b` (in different clusters)
    /// swapped assignments.
    fn delta(&self, a: SwitchId, b: SwitchId) -> f64;

    /// Apply the swap of `a` and `b`.
    fn apply(&mut self, a: SwitchId, b: SwitchId);

    /// The working partition.
    fn partition(&self) -> &Partition;

    /// Consume the objective, returning the working partition.
    fn into_partition(self) -> Partition
    where
        Self: Sized;
}

/// Incremental `F_G` evaluator over a working partition.
#[derive(Debug, Clone)]
pub struct SwapEvaluator<'t> {
    table: &'t DistanceTable,
    partition: Partition,
    /// `sums[v * M + c] = Σ_{u ∈ cluster c} T²(v, u)`.
    sums: Vec<f64>,
    /// Current numerator of Eq. 2 (sum of squared intracluster distances).
    intra_sum: f64,
    /// Constant denominator: `intra_pairs × mean_square`.
    norm: f64,
}

impl<'t> SwapEvaluator<'t> {
    /// Build the evaluator for `partition` over `table`.
    ///
    /// # Panics
    /// Panics if the partition and table sizes disagree.
    pub fn new(partition: Partition, table: &'t DistanceTable) -> Self {
        assert_eq!(
            partition.num_switches(),
            table.n(),
            "partition/table size mismatch"
        );
        let n = partition.num_switches();
        let m = partition.num_clusters();
        let mut sums = vec![0.0; n * m];
        for v in 0..n {
            for u in 0..n {
                if u != v {
                    sums[v * m + partition.cluster_of(u)] += table.get_sq(v, u);
                }
            }
        }
        let intra_sum = intra_square_sum(&partition, table);
        let norm = partition.intra_pairs() as f64 * table.mean_square();
        Self {
            table,
            partition,
            sums,
            intra_sum,
            norm,
        }
    }

    /// The working partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Consume the evaluator, returning the working partition.
    pub fn into_partition(self) -> Partition {
        self.partition
    }

    /// Current `F_G` value (Eq. 2).
    pub fn fg(&self) -> f64 {
        if self.norm == 0.0 {
            0.0
        } else {
            self.intra_sum / self.norm
        }
    }

    #[inline]
    fn sum(&self, v: SwitchId, cluster: usize) -> f64 {
        self.sums[v * self.partition.num_clusters() + cluster]
    }

    /// Change in the Eq.-2 numerator if switches `a` and `b` (in different
    /// clusters) swapped assignments. Negative is an improvement.
    pub fn delta_intra(&self, a: SwitchId, b: SwitchId) -> f64 {
        let ca = self.partition.cluster_of(a);
        let cb = self.partition.cluster_of(b);
        debug_assert_ne!(ca, cb, "swap within a cluster");
        let t_ab = self.table.get_sq(a, b);
        self.sum(a, cb) + self.sum(b, ca) - self.sum(a, ca) - self.sum(b, cb) - 2.0 * t_ab
    }

    /// Change in `F_G` if `a` and `b` swapped (O(1)).
    pub fn delta_fg(&self, a: SwitchId, b: SwitchId) -> f64 {
        if self.norm == 0.0 {
            0.0
        } else {
            self.delta_intra(a, b) / self.norm
        }
    }

    /// Apply the swap of `a` and `b`, updating the cache in O(N).
    pub fn apply_swap(&mut self, a: SwitchId, b: SwitchId) {
        let ca = self.partition.cluster_of(a);
        let cb = self.partition.cluster_of(b);
        debug_assert_ne!(ca, cb, "swap within a cluster");
        self.intra_sum += self.delta_intra(a, b);
        let m = self.partition.num_clusters();
        let n = self.partition.num_switches();
        for v in 0..n {
            let ta = self.table.get_sq(v, a);
            let tb = self.table.get_sq(v, b);
            // Cluster ca loses a, gains b; cluster cb loses b, gains a.
            self.sums[v * m + ca] += tb - ta;
            self.sums[v * m + cb] += ta - tb;
        }
        self.partition.swap(a, b);
    }
}

impl SwapObjective for SwapEvaluator<'_> {
    fn value(&self) -> f64 {
        self.fg()
    }

    fn delta(&self, a: SwitchId, b: SwitchId) -> f64 {
        self.delta_fg(a, b)
    }

    fn apply(&mut self, a: SwitchId, b: SwitchId) {
        self.apply_swap(a, b);
    }

    fn partition(&self) -> &Partition {
        SwapEvaluator::partition(self)
    }

    fn into_partition(self) -> Partition {
        SwapEvaluator::into_partition(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::similarity_fg;
    use commsched_distance::equivalent_distance_table;
    use commsched_routing::UpDownRouting;
    use commsched_topology::designed;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    fn setup() -> (DistanceTable, Partition) {
        let t = designed::paper_24_switch();
        let r = UpDownRouting::new(&t, 0).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let p = Partition::random_balanced(24, 4, &mut rng).unwrap();
        (table, p)
    }

    #[test]
    fn initial_fg_matches_direct() {
        let (table, p) = setup();
        let eval = SwapEvaluator::new(p.clone(), &table);
        assert_close(eval.fg(), similarity_fg(&p, &table));
    }

    #[test]
    fn delta_matches_recompute_for_all_swaps() {
        let (table, p) = setup();
        let eval = SwapEvaluator::new(p.clone(), &table);
        let base = similarity_fg(&p, &table);
        for a in 0..24 {
            for b in (a + 1)..24 {
                if p.cluster_of(a) == p.cluster_of(b) {
                    continue;
                }
                let mut q = p.clone();
                q.swap(a, b);
                let direct = similarity_fg(&q, &table) - base;
                assert_close(eval.delta_fg(a, b), direct);
            }
        }
    }

    #[test]
    fn apply_swap_keeps_cache_consistent() {
        let (table, p) = setup();
        let mut eval = SwapEvaluator::new(p, &table);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let a = rng.gen_range(0..24);
            let b = rng.gen_range(0..24);
            if eval.partition().cluster_of(a) == eval.partition().cluster_of(b) {
                continue;
            }
            eval.apply_swap(a, b);
            let fresh = SwapEvaluator::new(eval.partition().clone(), &table);
            assert_close(eval.fg(), fresh.fg());
        }
    }

    /// A pair of switches in different clusters (a legal swap), independent
    /// of the RNG stream that produced the partition.
    fn cross_cluster_pair(p: &Partition) -> (usize, usize) {
        (1..24)
            .map(|b| (0, b))
            .find(|&(a, b)| p.cluster_of(a) != p.cluster_of(b))
            .expect("a balanced 4-way partition has cross-cluster pairs")
    }

    #[test]
    fn swap_and_inverse_cancel() {
        let (table, p) = setup();
        let (a, b) = cross_cluster_pair(&p);
        let mut eval = SwapEvaluator::new(p.clone(), &table);
        let before = eval.fg();
        eval.apply_swap(a, b);
        eval.apply_swap(a, b);
        assert_close(eval.fg(), before);
        assert_eq!(eval.partition(), &p);
    }

    #[test]
    fn into_partition_returns_current_state() {
        let (table, p) = setup();
        let (a, b) = cross_cluster_pair(&p);
        let mut eval = SwapEvaluator::new(p.clone(), &table);
        eval.apply_swap(a, b);
        let out = eval.into_partition();
        assert_ne!(out, p);
        assert_eq!(out.sizes(), p.sizes());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let (table, _) = setup();
        let p = Partition::new(vec![0, 1], 2).unwrap();
        let _ = SwapEvaluator::new(p, &table);
    }
}
