//! Process-level view of a mapping.
//!
//! The paper's object of study is the mapping of *processes to processors*;
//! under its simplifying assumptions that collapses to a network partition.
//! This module keeps the process level explicit so the simulator can
//! generate per-workstation traffic and so the paper's divisibility
//! assumptions are checked rather than implied.

use crate::partition::{ClusterId, Partition, PartitionError};
use commsched_topology::{SwitchId, Topology};

/// One parallel application: a logical cluster of communicating processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalCluster {
    /// Human-readable name (e.g. the owning user or application).
    pub name: String,
    /// Number of processes in the application.
    pub processes: usize,
}

impl LogicalCluster {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, processes: usize) -> Self {
        Self {
            name: name.into(),
            processes,
        }
    }
}

/// A set of applications to place on a machine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Workload {
    /// The logical clusters, one per application.
    pub clusters: Vec<LogicalCluster>,
}

/// Errors raised when fitting a workload to a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The workload has no clusters.
    Empty,
    /// A cluster has zero processes.
    EmptyCluster(usize),
    /// Process counts must sum to the number of workstations (one process
    /// per processor, §4).
    TotalMismatch {
        /// Total processes in the workload.
        processes: usize,
        /// Workstations in the topology.
        hosts: usize,
    },
    /// Each cluster must fill an integer number of switches (§4.1's
    /// divisibility assumption).
    NotSwitchAligned {
        /// The offending cluster index.
        cluster: usize,
        /// Its process count.
        processes: usize,
        /// Hosts per switch.
        hosts_per_switch: usize,
    },
    /// Partition construction failed (internal).
    Partition(PartitionError),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Empty => write!(f, "workload has no clusters"),
            WorkloadError::EmptyCluster(c) => write!(f, "cluster {c} has no processes"),
            WorkloadError::TotalMismatch { processes, hosts } => {
                write!(f, "{processes} processes for {hosts} workstations")
            }
            WorkloadError::NotSwitchAligned {
                cluster,
                processes,
                hosts_per_switch,
            } => write!(
                f,
                "cluster {cluster} has {processes} processes, not a multiple of {hosts_per_switch}"
            ),
            WorkloadError::Partition(e) => write!(f, "partition error: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl Workload {
    /// A workload of `clusters` equal applications that exactly fills
    /// `topo` — the paper's experimental setup (4 clusters of N/4
    /// processes).
    ///
    /// # Errors
    /// See [`WorkloadError`].
    pub fn balanced(topo: &Topology, clusters: usize) -> Result<Self, WorkloadError> {
        if clusters == 0 {
            return Err(WorkloadError::Empty);
        }
        let hosts = topo.num_hosts();
        if !hosts.is_multiple_of(clusters) {
            return Err(WorkloadError::TotalMismatch {
                processes: hosts / clusters * clusters,
                hosts,
            });
        }
        let per = hosts / clusters;
        let wl = Self {
            clusters: (0..clusters)
                .map(|i| LogicalCluster::new(format!("app{i}"), per))
                .collect(),
        };
        wl.validate(topo)?;
        Ok(wl)
    }

    /// Check the paper's assumptions against `topo`.
    ///
    /// # Errors
    /// See [`WorkloadError`].
    pub fn validate(&self, topo: &Topology) -> Result<(), WorkloadError> {
        if self.clusters.is_empty() {
            return Err(WorkloadError::Empty);
        }
        let mut total = 0;
        let hps = topo.hosts_per_switch();
        for (i, c) in self.clusters.iter().enumerate() {
            if c.processes == 0 {
                return Err(WorkloadError::EmptyCluster(i));
            }
            if hps == 0 || c.processes % hps != 0 {
                return Err(WorkloadError::NotSwitchAligned {
                    cluster: i,
                    processes: c.processes,
                    hosts_per_switch: hps,
                });
            }
            total += c.processes;
        }
        if total != topo.num_hosts() {
            return Err(WorkloadError::TotalMismatch {
                processes: total,
                hosts: topo.num_hosts(),
            });
        }
        Ok(())
    }

    /// Switches each cluster needs: `processes / hosts_per_switch`.
    pub fn switch_demands(&self, hosts_per_switch: usize) -> Vec<usize> {
        self.clusters
            .iter()
            .map(|c| c.processes / hosts_per_switch)
            .collect()
    }
}

/// A concrete placement: for every workstation (host), the logical cluster
/// whose process runs there, plus the switch-level partition it induces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessMapping {
    hosts_per_switch: usize,
    /// `host_cluster[h]` = cluster of the process on workstation `h`;
    /// hosts of switch `s` are `s*hps .. (s+1)*hps`.
    host_cluster: Vec<ClusterId>,
    partition: Partition,
}

impl ProcessMapping {
    /// Realize `workload` on `topo` according to `partition` (one process
    /// per workstation; each switch's hosts all serve the switch's
    /// cluster).
    ///
    /// # Errors
    /// Workload must validate against the topology and its switch demands
    /// must match the partition's cluster sizes.
    pub fn place(
        topo: &Topology,
        workload: &Workload,
        partition: &Partition,
    ) -> Result<Self, WorkloadError> {
        workload.validate(topo)?;
        let demands = workload.switch_demands(topo.hosts_per_switch());
        let sizes = partition.sizes();
        if demands != sizes {
            return Err(WorkloadError::TotalMismatch {
                processes: demands.iter().sum::<usize>() * topo.hosts_per_switch(),
                hosts: sizes.iter().sum::<usize>() * topo.hosts_per_switch(),
            });
        }
        let hps = topo.hosts_per_switch();
        let mut host_cluster = Vec::with_capacity(topo.num_hosts());
        for s in 0..topo.num_switches() {
            host_cluster.extend(std::iter::repeat_n(partition.cluster_of(s), hps));
        }
        Ok(Self {
            hosts_per_switch: hps,
            host_cluster,
            partition: partition.clone(),
        })
    }

    /// Number of workstations.
    pub fn num_hosts(&self) -> usize {
        self.host_cluster.len()
    }

    /// Workstations per switch.
    pub fn hosts_per_switch(&self) -> usize {
        self.hosts_per_switch
    }

    /// Cluster of the process on workstation `h`.
    pub fn cluster_of_host(&self, h: usize) -> ClusterId {
        self.host_cluster[h]
    }

    /// The switch a workstation hangs off.
    pub fn switch_of_host(&self, h: usize) -> SwitchId {
        h / self.hosts_per_switch
    }

    /// Per-host cluster labels (the simulator's traffic pattern input).
    pub fn host_clusters(&self) -> &[ClusterId] {
        &self.host_cluster
    }

    /// The induced switch-level partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// All workstations whose processes belong to `cluster`.
    pub fn hosts_in_cluster(&self, cluster: ClusterId) -> Vec<usize> {
        (0..self.num_hosts())
            .filter(|&h| self.host_cluster[h] == cluster)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched_topology::designed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balanced_workload_fits() {
        let t = designed::ring(8, 4); // 32 hosts
        let wl = Workload::balanced(&t, 4).unwrap();
        assert_eq!(wl.clusters.len(), 4);
        assert!(wl.clusters.iter().all(|c| c.processes == 8));
        assert_eq!(wl.switch_demands(4), vec![2, 2, 2, 2]);
    }

    #[test]
    fn balanced_rejects_indivisible() {
        let t = designed::ring(5, 4); // 20 hosts, 3 clusters
        assert!(Workload::balanced(&t, 3).is_err());
    }

    #[test]
    fn validate_checks_alignment() {
        let t = designed::ring(4, 4); // 16 hosts
        let wl = Workload {
            clusters: vec![LogicalCluster::new("a", 10), LogicalCluster::new("b", 6)],
        };
        assert!(matches!(
            wl.validate(&t).unwrap_err(),
            WorkloadError::NotSwitchAligned { cluster: 0, .. }
        ));
    }

    #[test]
    fn validate_checks_total() {
        let t = designed::ring(4, 4);
        let wl = Workload {
            clusters: vec![LogicalCluster::new("a", 8)],
        };
        assert_eq!(
            wl.validate(&t).unwrap_err(),
            WorkloadError::TotalMismatch {
                processes: 8,
                hosts: 16
            }
        );
    }

    #[test]
    fn validate_rejects_empty() {
        let t = designed::ring(4, 4);
        assert_eq!(
            Workload::default().validate(&t).unwrap_err(),
            WorkloadError::Empty
        );
        let wl = Workload {
            clusters: vec![LogicalCluster::new("a", 16), LogicalCluster::new("b", 0)],
        };
        assert_eq!(wl.validate(&t).unwrap_err(), WorkloadError::EmptyCluster(1));
    }

    #[test]
    fn place_assigns_hosts_by_switch() {
        let t = designed::ring(4, 4);
        let wl = Workload::balanced(&t, 2).unwrap();
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        let m = ProcessMapping::place(&t, &wl, &p).unwrap();
        assert_eq!(m.num_hosts(), 16);
        for h in 0..16 {
            let s = m.switch_of_host(h);
            assert_eq!(m.cluster_of_host(h), p.cluster_of(s));
        }
        assert_eq!(m.hosts_in_cluster(0), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn place_rejects_mismatched_partition() {
        let t = designed::ring(4, 4);
        let wl = Workload {
            clusters: vec![LogicalCluster::new("a", 4), LogicalCluster::new("b", 12)],
        };
        // Partition sized 2+2 but workload demands 1+3.
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        assert!(ProcessMapping::place(&t, &wl, &p).is_err());
    }

    #[test]
    fn place_with_matching_uneven_sizes() {
        let t = designed::ring(4, 4);
        let wl = Workload {
            clusters: vec![LogicalCluster::new("a", 4), LogicalCluster::new("b", 12)],
        };
        let mut rng = StdRng::seed_from_u64(1);
        let p = Partition::random(4, &[1, 3], &mut rng).unwrap();
        let m = ProcessMapping::place(&t, &wl, &p).unwrap();
        assert_eq!(m.hosts_in_cluster(0).len(), 4);
        assert_eq!(m.hosts_in_cluster(1).len(), 12);
    }
}
