//! The paper's quality functions (§4.1, Eqs. 1–5).
//!
//! Given a distance table `T` and a network partition `P` with clusters
//! `A₁..A_M`:
//!
//! * `F_{Aᵢ}` (Eq. 1) — quadratic sum of intracluster distances;
//! * `F_G`   (Eq. 2) — mean squared intracluster distance, normalized by
//!   the quadratic average over *all* node pairs. `F_G == 1` for the
//!   expected random mapping; values near 0 mean very cheap intracluster
//!   communication;
//! * `D_{Aᵢ}` (Eq. 4) — quadratic sum of distances from `Aᵢ` to the rest;
//! * `D_G`   (Eq. 5) — mean squared intercluster distance, same
//!   normalization. `D_G == 1` when every node is its own cluster;
//! * `Cc = D_G / F_G` — the **clustering coefficient**, the intracluster /
//!   intercluster bandwidth relationship the scheduler maximizes.

use crate::partition::Partition;
use commsched_distance::DistanceTable;
use commsched_topology::SwitchId;

/// Quadratic sum of intracluster distances of one cluster (Eq. 1).
pub fn cluster_similarity(members: &[SwitchId], table: &DistanceTable) -> f64 {
    let mut acc = 0.0;
    for (k, &a) in members.iter().enumerate() {
        for &b in &members[k + 1..] {
            acc += table.get_sq(a, b);
        }
    }
    acc
}

/// Quadratic sum of distances from every node of `members` to every node
/// outside it (Eq. 4).
pub fn cluster_dissimilarity(
    members: &[SwitchId],
    partition: &Partition,
    table: &DistanceTable,
) -> f64 {
    let cluster = partition.cluster_of(members[0]);
    let mut acc = 0.0;
    for &a in members {
        for b in 0..partition.num_switches() {
            if partition.cluster_of(b) != cluster {
                acc += table.get_sq(a, b);
            }
        }
    }
    acc
}

/// Sum over clusters of Eq. 1 — the numerator of `F_G` before
/// normalization.
pub fn intra_square_sum(partition: &Partition, table: &DistanceTable) -> f64 {
    let mut acc = 0.0;
    let assign = partition.assignment();
    for i in 0..partition.num_switches() {
        for j in (i + 1)..partition.num_switches() {
            if assign[i] == assign[j] {
                acc += table.get_sq(i, j);
            }
        }
    }
    acc
}

/// The global similarity function `F_G` (Eq. 2).
///
/// Returns 0 when the partition has no intracluster pairs (all clusters
/// singletons): there is no intracluster communication to cost.
pub fn similarity_fg(partition: &Partition, table: &DistanceTable) -> f64 {
    let pairs = partition.intra_pairs();
    if pairs == 0 {
        return 0.0;
    }
    let mean_sq = table.mean_square();
    if mean_sq == 0.0 {
        return 0.0;
    }
    intra_square_sum(partition, table) / pairs as f64 / mean_sq
}

/// The global dissimilarity function `D_G` (Eq. 5).
///
/// Returns 0 when the partition is a single cluster (no intercluster
/// pairs).
pub fn dissimilarity_dg(partition: &Partition, table: &DistanceTable) -> f64 {
    let pairs = partition.inter_pairs();
    if pairs == 0 {
        return 0.0;
    }
    let mean_sq = table.mean_square();
    if mean_sq == 0.0 {
        return 0.0;
    }
    let inter_sum = table.total_square() - intra_square_sum(partition, table);
    inter_sum / pairs as f64 / mean_sq
}

/// The clustering coefficient `Cc = D_G / F_G` (§4.1).
///
/// `+∞` when `F_G == 0` (perfectly collapsed clusters with distinct
/// intercluster distances); `NaN` only when both functions vanish.
pub fn clustering_coefficient(partition: &Partition, table: &DistanceTable) -> f64 {
    dissimilarity_dg(partition, table) / similarity_fg(partition, table)
}

/// All three quality figures of a mapping, computed in one pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Global similarity `F_G` (Eq. 2) — lower is better.
    pub fg: f64,
    /// Global dissimilarity `D_G` (Eq. 5) — higher is better.
    pub dg: f64,
    /// Clustering coefficient `Cc = D_G / F_G` — higher is better.
    pub cc: f64,
}

/// Evaluate all quality figures of `partition` under `table`.
pub fn quality(partition: &Partition, table: &DistanceTable) -> Quality {
    let fg = similarity_fg(partition, table);
    let dg = dissimilarity_dg(partition, table);
    Quality {
        fg,
        dg,
        cc: dg / fg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched_distance::{equivalent_distance_table, hop_distance_table};
    use commsched_routing::ShortestPathRouting;
    use commsched_topology::designed;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    /// Line of 4 nodes, shortest-path routing: T = |i - j|.
    fn line4_table() -> DistanceTable {
        let t = designed::line(4, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        equivalent_distance_table(&t, &r).unwrap()
    }

    #[test]
    fn single_cluster_has_unit_fg() {
        // With one cluster containing everything, the numerator equals the
        // total and F_G normalizes to exactly 1.
        let table = line4_table();
        let p = Partition::new(vec![0, 0, 0, 0], 1).unwrap();
        assert_close(similarity_fg(&p, &table), 1.0);
        assert_close(dissimilarity_dg(&p, &table), 0.0);
    }

    #[test]
    fn singletons_have_unit_dg() {
        // With every node its own cluster, D_G is exactly 1 (the paper's
        // "each network node as a cluster" reference point).
        let table = line4_table();
        let p = Partition::new(vec![0, 1, 2, 3], 4).unwrap();
        assert_close(dissimilarity_dg(&p, &table), 1.0);
        assert_close(similarity_fg(&p, &table), 0.0);
    }

    #[test]
    fn contiguous_beats_interleaved_on_line() {
        let table = line4_table();
        let good = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        let bad = Partition::new(vec![0, 1, 0, 1], 2).unwrap();
        let qg = quality(&good, &table);
        let qb = quality(&bad, &table);
        assert!(qg.fg < qb.fg, "contiguous has cheaper intracluster cost");
        assert!(qg.dg > qb.dg, "contiguous has larger intercluster spread");
        assert!(qg.cc > qb.cc);
    }

    #[test]
    fn hand_computed_fg_on_line() {
        // T² for line4: pairs (0,1)=1 (0,2)=4 (0,3)=9 (1,2)=1 (1,3)=4 (2,3)=1
        // total = 20, mean over 6 pairs = 20/6.
        // Partition {0,1}{2,3}: intra sum = 1 + 1 = 2 over 2 pairs -> 1.
        // F_G = 1 / (20/6) = 0.3.
        let table = line4_table();
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        assert_close(similarity_fg(&p, &table), 0.3);
        // D_G: inter sum = 20 - 2 = 18 over 4 pairs = 4.5; /(20/6) = 1.35.
        assert_close(dissimilarity_dg(&p, &table), 1.35);
        assert_close(clustering_coefficient(&p, &table), 4.5);
    }

    #[test]
    fn intra_plus_inter_equals_total() {
        let table = line4_table();
        let p = Partition::new(vec![0, 1, 1, 0], 2).unwrap();
        let intra = intra_square_sum(&p, &table);
        let members = p.clusters();
        let inter: f64 = members
            .iter()
            .map(|m| cluster_dissimilarity(m, &p, &table))
            .sum::<f64>()
            / 2.0; // each unordered pair counted from both sides
        assert_close(intra + inter, table.total_square());
    }

    #[test]
    fn cluster_similarity_matches_sum() {
        let table = line4_table();
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        let total: f64 = p
            .clusters()
            .iter()
            .map(|m| cluster_similarity(m, &table))
            .sum();
        assert_close(total, intra_square_sum(&p, &table));
    }

    #[test]
    fn quality_consistent_with_parts() {
        let t = designed::ring(8, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        let p = Partition::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let q = quality(&p, &table);
        assert_close(q.fg, similarity_fg(&p, &table));
        assert_close(q.dg, dissimilarity_dg(&p, &table));
        assert_close(q.cc, q.dg / q.fg);
    }

    #[test]
    fn ring_of_rings_ground_truth_maximizes_cc() {
        // The designed 24-switch network: the physical rings must beat any
        // random balanced partition on Cc.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let t = designed::paper_24_switch();
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        let truth = Partition::from_clusters(&designed::ring_of_rings_clusters(4, 6)).unwrap();
        let cc_truth = clustering_coefficient(&truth, &table);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let random = Partition::random_balanced(24, 4, &mut rng).unwrap();
            if random.same_grouping(&truth) {
                continue;
            }
            assert!(
                cc_truth > clustering_coefficient(&random, &table),
                "ground truth should dominate random partitions"
            );
        }
    }

    #[test]
    fn hop_table_gives_same_ordering_on_line() {
        // Sanity: with the hop metric the contiguous split still wins.
        let t = designed::line(4, 1);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = hop_distance_table(&r);
        let good = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        let bad = Partition::new(vec![0, 1, 0, 1], 2).unwrap();
        assert!(similarity_fg(&good, &table) < similarity_fg(&bad, &table));
    }
}
