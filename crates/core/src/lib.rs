#![warn(missing_docs)]

//! Core of the communication-aware scheduling criterion (§4 of the paper).
//!
//! This crate holds the objects the scheduler reasons about:
//!
//! * [`Partition`] — the network partition a mapping of processes to
//!   processors induces (which cluster each switch serves);
//! * the quality functions of §4.1 — [`similarity_fg`] (Eq. 2),
//!   [`dissimilarity_dg`] (Eq. 5), and the [`clustering_coefficient`]
//!   `Cc = D_G / F_G` that measures the intracluster/intercluster
//!   bandwidth relationship of a mapping;
//! * [`SwapEvaluator`] — O(1) evaluation of `F_G` changes under the
//!   pairwise swaps the tabu search explores;
//! * [`Workload`] / [`ProcessMapping`] — the process-level view and the
//!   paper's divisibility assumptions, checked;
//! * [`weighted`] — the future-work generalizations (per-application
//!   weights, arbitrary communication matrices).
//!
//! # Example
//!
//! ```
//! use commsched_topology::designed;
//! use commsched_routing::ShortestPathRouting;
//! use commsched_distance::equivalent_distance_table;
//! use commsched_core::{Partition, quality};
//!
//! let topo = designed::line(4, 4);
//! let routing = ShortestPathRouting::new(&topo).unwrap();
//! let table = equivalent_distance_table(&topo, &routing).unwrap();
//! let contiguous = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
//! let interleaved = Partition::new(vec![0, 1, 0, 1], 2).unwrap();
//! // The contiguous mapping has the higher clustering coefficient.
//! assert!(quality(&contiguous, &table).cc > quality(&interleaved, &table).cc);
//! ```

pub mod eval;
pub mod mapping;
pub mod partition;
pub mod quality;
pub mod weighted;

pub use eval::{SwapEvaluator, SwapObjective};
pub use mapping::{LogicalCluster, ProcessMapping, Workload, WorkloadError};
pub use partition::{ClusterId, Partition, PartitionError};
pub use quality::{
    cluster_dissimilarity, cluster_similarity, clustering_coefficient, dissimilarity_dg,
    intra_square_sum, quality, similarity_fg, Quality,
};
pub use weighted::{traffic_cost, weighted_similarity_fg, CommMatrix, WeightedSwapEvaluator};
