//! Future-work extensions: non-uniform communication requirements.
//!
//! The paper's §6 leaves "eliminating the simplifying assumptions" to
//! future work. This module provides the two natural generalizations of the
//! quality criterion so the library is usable beyond the paper's setting:
//!
//! * [`weighted_similarity_fg`] — per-application traffic weights: an
//!   application with twice the bandwidth demand counts twice in the
//!   intracluster cost;
//! * [`traffic_cost`] — a fully general per-process communication matrix
//!   evaluated at host granularity, `J = Σ_{p<q} w(p,q) · T²(sw(p), sw(q))`,
//!   which reduces to the unweighted numerator of Eq. 2 when `w` is the
//!   intracluster indicator.
//!
//! Both reduce exactly to the paper's functions for uniform weights; tests
//! pin that equivalence.

use crate::eval::SwapObjective;
use crate::mapping::ProcessMapping;
use crate::partition::Partition;
use crate::quality::cluster_similarity;
use commsched_distance::DistanceTable;

/// Per-process symmetric communication-demand matrix (host granularity).
#[derive(Debug, Clone, PartialEq)]
pub struct CommMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CommMatrix {
    /// Zero matrix for `n` processes.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Demand between processes `p` and `q`.
    #[inline]
    pub fn get(&self, p: usize, q: usize) -> f64 {
        self.data[p * self.n + q]
    }

    /// Set the (symmetric) demand between `p` and `q`.
    pub fn set(&mut self, p: usize, q: usize, w: f64) {
        self.data[p * self.n + q] = w;
        self.data[q * self.n + p] = w;
    }

    /// The paper's implicit matrix: demand 1 between processes in the same
    /// logical cluster, 0 otherwise.
    pub fn intracluster_indicator(mapping: &ProcessMapping) -> Self {
        let n = mapping.num_hosts();
        let mut m = Self::zeros(n);
        for p in 0..n {
            for q in (p + 1)..n {
                if mapping.cluster_of_host(p) == mapping.cluster_of_host(q) {
                    m.set(p, q, 1.0);
                }
            }
        }
        m
    }
}

/// Weighted global similarity: Eq. 2 with every cluster's quadratic sum
/// scaled by its traffic weight. Weights are normalized so uniform weights
/// reproduce `F_G` exactly.
///
/// # Panics
/// Panics if `weights.len() != partition.num_clusters()`.
pub fn weighted_similarity_fg(
    partition: &Partition,
    table: &DistanceTable,
    weights: &[f64],
) -> f64 {
    assert_eq!(
        weights.len(),
        partition.num_clusters(),
        "one weight per cluster"
    );
    let mean_sq = table.mean_square();
    if mean_sq == 0.0 {
        return 0.0;
    }
    let clusters = partition.clusters();
    let mut num = 0.0;
    let mut pairs = 0.0;
    for (members, &w) in clusters.iter().zip(weights) {
        num += w * cluster_similarity(members, table);
        pairs += w * (members.len() * (members.len() - 1) / 2) as f64;
    }
    if pairs == 0.0 {
        return 0.0;
    }
    num / pairs / mean_sq
}

/// Fully general mapping cost under a process-level communication matrix:
/// `J = Σ_{p<q} w(p,q) · T²(switch(p), switch(q))`.
///
/// # Panics
/// Panics if the matrix size differs from the mapping's host count.
pub fn traffic_cost(mapping: &ProcessMapping, comm: &CommMatrix, table: &DistanceTable) -> f64 {
    assert_eq!(comm.n(), mapping.num_hosts(), "matrix/host count mismatch");
    let n = mapping.num_hosts();
    let mut acc = 0.0;
    for p in 0..n {
        let sp = mapping.switch_of_host(p);
        for q in (p + 1)..n {
            let w = comm.get(p, q);
            if w != 0.0 {
                acc += w * table.get_sq(sp, mapping.switch_of_host(q));
            }
        }
    }
    acc
}

/// Incremental evaluator for [`weighted_similarity_fg`] under pairwise
/// swaps — the weighted analogue of [`crate::SwapEvaluator`], implementing
/// [`SwapObjective`] so the tabu search can optimize application-weighted
/// mappings (the paper's future-work setting of unequal communication
/// requirements).
#[derive(Debug, Clone)]
pub struct WeightedSwapEvaluator<'t> {
    table: &'t DistanceTable,
    partition: Partition,
    weights: Vec<f64>,
    /// `sums[v * M + c] = Σ_{u ∈ cluster c} T²(v, u)`.
    sums: Vec<f64>,
    /// Current weighted numerator `Σ_c w_c · IntraSum_c`.
    numerator: f64,
    /// Constant denominator `Σ_c w_c · pairs_c × mean_square`.
    norm: f64,
}

impl<'t> WeightedSwapEvaluator<'t> {
    /// Build the evaluator.
    ///
    /// # Panics
    /// Panics on size mismatches or non-positive weights.
    pub fn new(partition: Partition, table: &'t DistanceTable, weights: Vec<f64>) -> Self {
        assert_eq!(
            partition.num_switches(),
            table.n(),
            "partition/table size mismatch"
        );
        assert_eq!(
            weights.len(),
            partition.num_clusters(),
            "one weight per cluster"
        );
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let n = partition.num_switches();
        let m = partition.num_clusters();
        let mut sums = vec![0.0; n * m];
        for v in 0..n {
            for u in 0..n {
                if u != v {
                    sums[v * m + partition.cluster_of(u)] += table.get_sq(v, u);
                }
            }
        }
        let clusters = partition.clusters();
        let numerator: f64 = clusters
            .iter()
            .zip(&weights)
            .map(|(members, &w)| w * cluster_similarity(members, table))
            .sum();
        let norm: f64 = clusters
            .iter()
            .zip(&weights)
            .map(|(members, &w)| w * (members.len() * (members.len() - 1) / 2) as f64)
            .sum::<f64>()
            * table.mean_square();
        Self {
            table,
            partition,
            weights,
            sums,
            numerator,
            norm,
        }
    }

    #[inline]
    fn sum(&self, v: usize, cluster: usize) -> f64 {
        self.sums[v * self.partition.num_clusters() + cluster]
    }

    fn delta_numerator(&self, a: usize, b: usize) -> f64 {
        let ca = self.partition.cluster_of(a);
        let cb = self.partition.cluster_of(b);
        debug_assert_ne!(ca, cb, "swap within a cluster");
        let t_ab = self.table.get_sq(a, b);
        self.weights[ca] * (self.sum(b, ca) - t_ab - self.sum(a, ca))
            + self.weights[cb] * (self.sum(a, cb) - t_ab - self.sum(b, cb))
    }
}

impl SwapObjective for WeightedSwapEvaluator<'_> {
    fn value(&self) -> f64 {
        if self.norm == 0.0 {
            0.0
        } else {
            self.numerator / self.norm
        }
    }

    fn delta(&self, a: usize, b: usize) -> f64 {
        if self.norm == 0.0 {
            0.0
        } else {
            self.delta_numerator(a, b) / self.norm
        }
    }

    fn apply(&mut self, a: usize, b: usize) {
        let ca = self.partition.cluster_of(a);
        let cb = self.partition.cluster_of(b);
        self.numerator += self.delta_numerator(a, b);
        let m = self.partition.num_clusters();
        for v in 0..self.partition.num_switches() {
            let ta = self.table.get_sq(v, a);
            let tb = self.table.get_sq(v, b);
            self.sums[v * m + ca] += tb - ta;
            self.sums[v * m + cb] += ta - tb;
        }
        self.partition.swap(a, b);
    }

    fn partition(&self) -> &Partition {
        &self.partition
    }

    fn into_partition(self) -> Partition {
        self.partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Workload;
    use crate::quality::{intra_square_sum, similarity_fg};
    use commsched_distance::equivalent_distance_table;
    use commsched_routing::ShortestPathRouting;
    use commsched_topology::designed;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    fn setup() -> (DistanceTable, Partition, ProcessMapping) {
        let t = designed::ring(8, 4);
        let r = ShortestPathRouting::new(&t).unwrap();
        let table = equivalent_distance_table(&t, &r).unwrap();
        let p = Partition::new(vec![0, 0, 1, 1, 2, 2, 3, 3], 4).unwrap();
        let wl = Workload::balanced(&t, 4).unwrap();
        let m = ProcessMapping::place(&t, &wl, &p).unwrap();
        (table, p, m)
    }

    #[test]
    fn uniform_weights_reduce_to_fg() {
        let (table, p, _) = setup();
        let w = vec![1.0; 4];
        assert_close(
            weighted_similarity_fg(&p, &table, &w),
            similarity_fg(&p, &table),
        );
        // Any uniform scale is equivalent.
        let w = vec![3.5; 4];
        assert_close(
            weighted_similarity_fg(&p, &table, &w),
            similarity_fg(&p, &table),
        );
    }

    #[test]
    fn heavy_cluster_dominates() {
        let (table, _, _) = setup();
        // Cluster 0 contiguous (cheap), cluster 1 spread antipodally
        // (expensive).
        let p = Partition::new(vec![0, 0, 1, 2, 2, 1, 3, 3], 4).unwrap();
        let cheap_heavy = weighted_similarity_fg(&p, &table, &[10.0, 1.0, 1.0, 1.0]);
        let costly_heavy = weighted_similarity_fg(&p, &table, &[1.0, 10.0, 1.0, 1.0]);
        assert!(costly_heavy > cheap_heavy);
    }

    #[test]
    fn indicator_matrix_matches_intra_sum() {
        let (table, p, m) = setup();
        let comm = CommMatrix::intracluster_indicator(&m);
        // Every intracluster host pair contributes T² of its switch pair;
        // hosts on the same switch contribute 0 (T(s,s) = 0). With 4 hosts
        // per switch, each switch pair inside a cluster is counted 16
        // times.
        let j = traffic_cost(&m, &comm, &table);
        let per_pair = 16.0;
        assert_close(j, per_pair * intra_square_sum(&p, &table));
    }

    #[test]
    fn traffic_cost_zero_matrix() {
        let (table, _, m) = setup();
        let comm = CommMatrix::zeros(m.num_hosts());
        assert_close(traffic_cost(&m, &comm, &table), 0.0);
    }

    #[test]
    fn comm_matrix_is_symmetric() {
        let mut m = CommMatrix::zeros(4);
        m.set(0, 3, 2.5);
        assert_eq!(m.get(3, 0), 2.5);
        assert_eq!(m.get(0, 3), 2.5);
        assert_eq!(m.n(), 4);
    }

    #[test]
    #[should_panic(expected = "one weight per cluster")]
    fn wrong_weight_count_panics() {
        let (table, p, _) = setup();
        let _ = weighted_similarity_fg(&p, &table, &[1.0, 2.0]);
    }

    #[test]
    fn weighted_evaluator_matches_direct() {
        let (table, p, _) = setup();
        let weights = vec![5.0, 1.0, 2.0, 1.0];
        let eval = WeightedSwapEvaluator::new(p.clone(), &table, weights.clone());
        assert_close(eval.value(), weighted_similarity_fg(&p, &table, &weights));
        for a in 0..8 {
            for b in (a + 1)..8 {
                if p.cluster_of(a) == p.cluster_of(b) {
                    continue;
                }
                let mut q = p.clone();
                q.swap(a, b);
                let direct = weighted_similarity_fg(&q, &table, &weights)
                    - weighted_similarity_fg(&p, &table, &weights);
                assert_close(eval.delta(a, b), direct);
            }
        }
    }

    #[test]
    fn weighted_evaluator_apply_consistent() {
        let (table, p, _) = setup();
        let weights = vec![3.0, 1.0, 1.0, 2.0];
        let mut eval = WeightedSwapEvaluator::new(p, &table, weights.clone());
        for (a, b) in [(0usize, 2usize), (1, 7), (3, 5), (0, 2)] {
            if eval.partition().cluster_of(a) == eval.partition().cluster_of(b) {
                continue;
            }
            eval.apply(a, b);
            let direct = weighted_similarity_fg(eval.partition(), &table, &weights);
            assert_close(eval.value(), direct);
        }
    }

    #[test]
    fn weighted_evaluator_uniform_matches_unweighted() {
        use crate::eval::SwapEvaluator;
        let (table, p, _) = setup();
        let w = WeightedSwapEvaluator::new(p.clone(), &table, vec![2.0; 4]);
        let u = SwapEvaluator::new(p, &table);
        assert_close(w.value(), u.fg());
        assert_close(w.delta(0, 2), u.delta_fg(0, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_evaluator_rejects_zero_weight() {
        let (table, p, _) = setup();
        let _ = WeightedSwapEvaluator::new(p, &table, vec![1.0, 0.0, 1.0, 1.0]);
    }
}
