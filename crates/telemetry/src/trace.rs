//! Span/event tracing into per-thread ring buffers.
//!
//! Tracing is process-global and **off by default**; a disarmed
//! [`Span::enter`] or [`instant`] costs one relaxed atomic load. When
//! armed (via [`set_tracing`]), events go into a bounded ring buffer
//! owned by the recording thread — no cross-thread contention on the
//! hot path; the ring's mutex is only ever contended by [`drain`].
//! Rings are registered globally on first use so a drain sees every
//! thread's events, including threads that have already exited.
//!
//! [`export_jsonl`] writes drained events as JSON lines (one object per
//! event), the format consumed by `commsched schedule --trace-out`.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Capacity of each per-thread ring. Oldest events are dropped (and
/// counted) once a thread exceeds this between drains.
const RING_CAP: usize = 65_536;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Turn tracing on or off process-wide. Turning it off leaves already
/// buffered events in place for a final [`drain`].
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently armed.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event with no duration.
    Instant,
}

impl TracePhase {
    fn as_str(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "I",
        }
    }
}

/// One buffered trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch (first trace use).
    pub ts_nanos: u64,
    /// Recording thread (small dense id assigned at first trace use).
    pub thread: u64,
    /// Static event name, e.g. `"distance.build"`.
    pub name: &'static str,
    /// Begin / End / Instant.
    pub phase: TracePhase,
    /// Optional payload (an iteration's objective value, a count, …).
    pub value: Option<f64>,
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: (u64, Arc<Mutex<Ring>>) = {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        let ring = Arc::new(Mutex::new(Ring {
            buf: VecDeque::new(),
            dropped: 0,
        }));
        rings().lock().expect("trace ring registry lock").push(Arc::clone(&ring));
        (NEXT_THREAD.fetch_add(1, Ordering::Relaxed), ring)
    };
}

fn push(name: &'static str, phase: TracePhase, value: Option<f64>) {
    let ts_nanos = now_nanos();
    LOCAL.with(|(thread, ring)| {
        let mut ring = ring.lock().expect("trace ring lock");
        if ring.buf.len() >= RING_CAP {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(TraceEvent {
            ts_nanos,
            thread: *thread,
            name,
            phase,
            value,
        });
    });
}

/// Record a point event, optionally carrying a value. No-op (one
/// relaxed load) unless tracing is armed.
#[inline]
pub fn instant(name: &'static str, value: Option<f64>) {
    if !tracing_enabled() {
        return;
    }
    push(name, TracePhase::Instant, value);
}

/// An RAII span: emits a Begin event on [`Span::enter`] and the matching
/// End event when dropped. If tracing was off at enter time the span is
/// disarmed and its drop emits nothing, so a span can never produce an
/// unmatched End.
pub struct Span {
    name: &'static str,
    armed: bool,
}

impl Span {
    /// Open a span named `name`. One relaxed load when tracing is off.
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        let armed = tracing_enabled();
        if armed {
            push(name, TracePhase::Begin, None);
        }
        Self { name, armed }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            push(self.name, TracePhase::End, None);
        }
    }
}

/// Take every buffered event from every thread's ring, sorted by
/// timestamp. Returns the events and the number of events dropped to
/// ring overflow since the previous drain.
pub fn drain() -> (Vec<TraceEvent>, u64) {
    let rings = rings().lock().expect("trace ring registry lock");
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in rings.iter() {
        let mut ring = ring.lock().expect("trace ring lock");
        events.extend(ring.buf.drain(..));
        dropped += ring.dropped;
        ring.dropped = 0;
    }
    drop(rings);
    events.sort_by_key(|e| e.ts_nanos);
    (events, dropped)
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serialize events as JSON lines: one object per event with keys
/// `ts_us` (microseconds since trace epoch, fractional), `tid`, `name`,
/// `ph` (`"B"`/`"E"`/`"I"`), and `value` when present.
pub fn export_jsonl<W: Write>(events: &[TraceEvent], mut w: W) -> io::Result<()> {
    let mut line = String::new();
    for e in events {
        line.clear();
        line.push_str("{\"ts_us\":");
        line.push_str(&format!("{:.3}", e.ts_nanos as f64 / 1000.0));
        line.push_str(",\"tid\":");
        line.push_str(&e.thread.to_string());
        line.push_str(",\"name\":\"");
        escape_json(e.name, &mut line);
        line.push_str("\",\"ph\":\"");
        line.push_str(e.phase.as_str());
        line.push('"');
        if let Some(v) = e.value {
            line.push_str(",\"value\":");
            if v.is_finite() {
                line.push_str(&format!("{v}"));
            } else {
                line.push_str("null");
            }
        }
        line.push_str("}\n");
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global, so exercise everything in one
    // test to avoid cross-test races under the parallel test runner.
    #[test]
    fn spans_events_drain_and_export() {
        assert!(!tracing_enabled(), "tracing must default to off");

        // Disarmed: nothing is buffered.
        {
            let _s = Span::enter("off.span");
            instant("off.event", Some(1.0));
        }
        let (events, _) = drain();
        assert!(
            events.iter().all(|e| !e.name.starts_with("off.")),
            "disarmed events leaked into the ring"
        );

        set_tracing(true);
        {
            let _s = Span::enter("test.outer");
            instant("test.point", Some(42.5));
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _inner = Span::enter("test.worker");
                    instant("test.worker.point", None);
                });
            });
        }
        set_tracing(false);

        let (events, dropped) = drain();
        assert_eq!(dropped, 0);
        let ours: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("test."))
            .collect();
        // outer B/E, point I, worker B/E, worker point I.
        assert_eq!(ours.len(), 6, "events: {ours:?}");
        let outer_begin = ours
            .iter()
            .position(|e| e.name == "test.outer" && e.phase == TracePhase::Begin)
            .expect("outer begin");
        let outer_end = ours
            .iter()
            .position(|e| e.name == "test.outer" && e.phase == TracePhase::End)
            .expect("outer end");
        assert!(outer_begin < outer_end, "span events out of order");
        let point = ours
            .iter()
            .find(|e| e.name == "test.point")
            .expect("instant event");
        assert_eq!(point.phase, TracePhase::Instant);
        assert_eq!(point.value, Some(42.5));
        // The worker thread recorded under a different thread id.
        let main_tid = point.thread;
        let worker = ours
            .iter()
            .find(|e| e.name == "test.worker.point")
            .expect("worker event");
        assert_ne!(worker.thread, main_tid);
        // Timestamps are sorted after drain.
        assert!(events.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));

        // A second drain is empty (single-consumer semantics).
        let (again, _) = drain();
        assert!(again.iter().all(|e| !e.name.starts_with("test.")));

        // JSONL export round-trips the shape we claim.
        let evs = [
            TraceEvent {
                ts_nanos: 1500,
                thread: 0,
                name: "x\"y",
                phase: TracePhase::Begin,
                value: None,
            },
            TraceEvent {
                ts_nanos: 2500,
                thread: 1,
                name: "z",
                phase: TracePhase::Instant,
                value: Some(3.5),
            },
        ];
        let mut buf = Vec::new();
        export_jsonl(&evs, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ts_us\":1.500,\"tid\":0,\"name\":\"x\\\"y\",\"ph\":\"B\"}"
        );
        assert_eq!(
            lines[1],
            "{\"ts_us\":2.500,\"tid\":1,\"name\":\"z\",\"ph\":\"I\",\"value\":3.5}"
        );
    }
}
