#![warn(missing_docs)]

//! Zero-dependency observability for the commsched workspace.
//!
//! Long-running deployments of commsched (the `commsched serve` daemon,
//! sweep harnesses, perf baselines) need to answer "where did the time
//! go" without ad-hoc `Instant::now()` scaffolding. This crate provides
//! the three layers production schedulers rely on, hand-rolled on
//! `std::sync::atomic` like the rest of the workspace (no crates.io
//! dependencies):
//!
//! * [`metrics`] — a [`Registry`] of named [`Counter`]s (sharded across
//!   cache-line-padded atomic cells), [`Gauge`]s, and log-bucketed
//!   [`Histo`]grams whose bucket layout is
//!   [`commsched_stats::LogBuckets`]. Every handle is a cheap `Arc`
//!   clone; a *disabled* metric costs exactly one relaxed atomic load on
//!   the hot path.
//! * [`trace`] — lightweight span/event tracing into per-thread ring
//!   buffers, exported as JSON lines ([`trace::export_jsonl`]). Tracing
//!   is off by default; a disarmed span is one relaxed load.
//! * exposition — [`Registry::render_prometheus`] dumps every metric in
//!   the Prometheus text format, which the service protocol's `METRICS`
//!   request and the `commsched metrics` CLI arm forward verbatim.
//!
//! The [`global()`] registry serves library kernels (distance builds,
//! tabu search, the network simulator) that cannot thread a registry
//! handle through their signatures; components with their own lifetime
//! (one [`Registry`] per daemon core) create private registries so tests
//! never share counters.

pub mod metrics;
pub mod trace;

pub use metrics::{global, set_enabled, Counter, Gauge, Histo, Registry};
pub use trace::{set_tracing, tracing_enabled, Span, TraceEvent, TracePhase};
