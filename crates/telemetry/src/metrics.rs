//! The metric registry: sharded counters, gauges, log-bucketed
//! histograms, and Prometheus-style exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histo`]) are cheap `Arc` clones
//! that stay valid for the life of the process; call sites cache them
//! (typically in a `OnceLock`) and never touch the registry lock again.
//! Every handle carries its registry's *enabled* flag, so a disabled
//! metric costs a single relaxed atomic load per operation — the
//! invariant the instrumented solver kernels rely on.

use commsched_stats::LogBuckets;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shards per counter. Eight padded cells cover the worker counts this
/// workspace uses (the service defaults to a handful of workers) while
/// keeping an idle counter at 512 bytes.
const SHARDS: usize = 8;

/// One cache line per shard so concurrent writers on different cores
/// never bounce the same line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

fn shard_index() -> usize {
    // Round-robin shard assignment at first use per thread: stable for
    // the thread's lifetime, uniformly spread across shards.
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

struct CounterCell {
    enabled: Arc<AtomicBool>,
    shards: [PaddedU64; SHARDS],
}

/// A monotonically increasing counter, sharded across padded atomic
/// cells so concurrent increments from different threads don't contend.
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. When the owning registry is disabled this is one relaxed
    /// atomic load and an early return.
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.0.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum over shards).
    pub fn get(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

struct GaugeCell {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
}

/// A settable instantaneous value (queue depths, rates).
#[derive(Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.0.value.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.0.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

struct HistoCell {
    enabled: Arc<AtomicBool>,
    layout: LogBuckets,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log-bucketed histogram over non-negative integer samples
/// (durations in the unit the metric name declares, sizes, …).
///
/// The bucket layout is [`commsched_stats::LogBuckets`]: one zero
/// bucket plus four linear sub-buckets per power of two, so a bucket
/// midpoint is within ~12.5 % of any sample it absorbed — enough for
/// latency quantiles without per-sample storage.
#[derive(Clone)]
pub struct Histo(Arc<HistoCell>);

impl Histo {
    /// Record one sample. Disabled: one relaxed load.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = self.0.layout.index(value);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile from bucket midpoints (`None` when
    /// empty). Same midpoint convention as
    /// [`commsched_stats::Histogram::approx_quantile`].
    pub fn approx_quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (idx, bucket) in self.0.buckets.iter().enumerate() {
            acc += bucket.load(Ordering::Relaxed);
            if acc >= target {
                return Some(self.0.layout.midpoint(idx));
            }
        }
        None
    }

    /// Non-empty buckets as `(lower_edge, upper_edge_exclusive, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| {
                    (
                        self.0.layout.lower_edge(idx),
                        self.0.layout.upper_edge(idx),
                        c,
                    )
                })
            })
            .collect()
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histo(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    metric: Metric,
}

/// A named collection of metrics.
///
/// The workspace keeps one [`global()`] registry for library kernels and
/// lets long-lived components (a daemon core) own private registries, so
/// concurrent tests never observe each other's counters. Registration is
/// get-or-create by name; looking a name up twice returns handles to the
/// same underlying cells.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turn recording on or off for every metric of this registry.
    /// Reads (`get`, exposition) keep working either way.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether this registry currently records.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn get_or_insert(&self, name: &str, help: &str, make: impl FnOnce(&Self) -> Metric) -> Metric {
        let mut entries = self.entries.lock().expect("metrics registry lock");
        if let Some(e) = entries.get(name) {
            return e.metric.clone();
        }
        let metric = make(self);
        entries.insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                metric: metric.clone(),
            },
        );
        metric
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.get_or_insert(name, help, |r| {
            Metric::Counter(Counter(Arc::new(CounterCell {
                enabled: Arc::clone(&r.enabled),
                shards: Default::default(),
            })))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.get_or_insert(name, help, |r| {
            Metric::Gauge(Gauge(Arc::new(GaugeCell {
                enabled: Arc::clone(&r.enabled),
                value: AtomicI64::new(0),
            })))
        }) {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Histo {
        match self.get_or_insert(name, help, |r| {
            let layout = LogBuckets::new(4);
            let buckets = (0..layout.len()).map(|_| AtomicU64::new(0)).collect();
            Metric::Histo(Histo(Arc::new(HistoCell {
                enabled: Arc::clone(&r.enabled),
                layout,
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })))
        }) {
            Metric::Histo(h) => h,
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// Render every metric in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le="…"}` samples at their
    /// non-empty bucket edges plus `le="+Inf"`, and `_sum`/`_count` —
    /// a sparse but valid sampling of the CDF.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.entries.lock().expect("metrics registry lock");
        let mut out = String::new();
        for (name, e) in entries.iter() {
            if !e.help.is_empty() {
                writeln!(out, "# HELP {name} {}", e.help).expect("write to string");
            }
            writeln!(out, "# TYPE {name} {}", e.metric.kind()).expect("write to string");
            match &e.metric {
                Metric::Counter(c) => writeln!(out, "{name} {}", c.get()).expect("write to string"),
                Metric::Gauge(g) => writeln!(out, "{name} {}", g.get()).expect("write to string"),
                Metric::Histo(h) => {
                    let mut cum = 0u64;
                    for (_, hi, count) in h.nonzero_buckets() {
                        cum += count;
                        if hi == u64::MAX {
                            continue; // folded into +Inf below
                        }
                        writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cum}")
                            .expect("write to string");
                    }
                    writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count())
                        .expect("write to string");
                    writeln!(out, "{name}_sum {}", h.sum()).expect("write to string");
                    writeln!(out, "{name}_count {}", h.count()).expect("write to string");
                }
            }
        }
        out
    }
}

/// The process-wide registry used by library kernels (distance builds,
/// search, netsim) that cannot carry a registry through their APIs.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Enable or disable recording on the [`global()`] registry.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_sum() {
        let r = Registry::new();
        let c = r.counter("test_ops_total", "ops");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same cells.
        let c2 = r.counter("test_ops_total", "ops");
        c2.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn counter_shards_merge_across_threads() {
        let r = Registry::new();
        let c = r.counter("mt_ops_total", "ops");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("depth", "queue depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat_ms", "latency");
        for v in [0, 1, 2, 3, 100, 100, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1306);
        let p50 = h.approx_quantile(0.5).unwrap();
        assert!((3.0..=120.0).contains(&p50), "p50 = {p50}");
        let p99 = h.approx_quantile(0.99).unwrap();
        assert!(p99 > 500.0, "p99 = {p99}");
        assert_eq!(
            h.approx_quantile(0.0).unwrap(),
            h.approx_quantile(0.01).unwrap()
        );
        // Empty histogram has no quantiles.
        let empty = r.histogram("empty", "");
        assert_eq!(empty.approx_quantile(0.5), None);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        let c = r.counter("c_total", "");
        let g = r.gauge("g", "");
        let h = r.histogram("h", "");
        r.set_enabled(false);
        assert!(!r.enabled());
        c.inc();
        g.set(9);
        h.record(5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        // Re-enabling resumes recording on the same cells.
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x", "");
        let _ = r.gauge("x", "");
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("jobs_total", "jobs run").add(3);
        r.gauge("queue_depth", "pending").set(2);
        let h = r.histogram("wait_ms", "queue wait");
        h.record(0);
        h.record(9);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total 3"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 2"));
        assert!(text.contains("# TYPE wait_ms histogram"));
        assert!(text.contains("wait_ms_count 2"));
        assert!(text.contains("wait_ms_sum 9"));
        assert!(text.contains("wait_ms_bucket{le=\"+Inf\"} 2"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("wait_ms_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative bucket decreased: {line}");
            last = v;
        }
    }

    #[test]
    fn global_registry_is_shared() {
        let a = global().counter("global_smoke_total", "");
        let b = global().counter("global_smoke_total", "");
        a.inc();
        b.inc();
        assert!(a.get() >= 2);
    }
}
