//! High-level communication-aware scheduler: the end-to-end pipeline of the
//! paper in one object.
//!
//! [`Scheduler`] owns a topology, builds the routing and the table of
//! equivalent distances once, and then maps workloads: given a set of
//! logical clusters, it runs the tabu search to find a near-optimal network
//! partition and realizes it as a process-to-processor mapping.

use commsched_core::{quality, Partition, ProcessMapping, Quality, Workload, WorkloadError};
use commsched_distance::{
    equivalent_distance_table_with_report, ApproxReport, DistanceTable, SolverKind, TableError,
    TableOptions,
};
use commsched_routing::{Routing, RoutingError, ShortestPathRouting, UpDownRouting};
use commsched_search::{
    multilevel_map, parallel_multi_seed, MapStrategy, MultilevelParams, MultilevelStats,
    TabuParams, TabuSearch,
};
use commsched_topology::{SwitchId, Topology};

/// Which routing algorithm the scheduler models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// Autonet-style up*/down* routing rooted at the given switch (the
    /// paper's setting).
    UpDown {
        /// Root of the spanning tree.
        root: SwitchId,
    },
    /// Unconstrained shortest-path routing.
    ShortestPath,
}

impl Default for RoutingKind {
    fn default() -> Self {
        RoutingKind::UpDown { root: 0 }
    }
}

/// Scale knobs: which mapping strategy runs and whether the distance
/// table is built with the certified-interval approximate solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerOptions {
    /// Flat tabu (the paper's method) or the coarsen→map→refine
    /// multilevel pipeline for large instances.
    pub strategy: MapStrategy,
    /// Multilevel only: coarsen until the graph fits this many nodes.
    pub max_coarse_n: usize,
    /// Approximate-table relative error budget in millionths
    /// (`50_000` = 5%); `0` builds the exact table.
    pub approx_eps_micros: u32,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        Self {
            strategy: MapStrategy::Flat,
            max_coarse_n: MultilevelParams::default().max_coarse_n,
            approx_eps_micros: 0,
        }
    }
}

/// Errors from scheduler construction or scheduling.
#[derive(Debug)]
pub enum ScheduleError {
    /// Router construction failed.
    Routing(RoutingError),
    /// Distance-table construction failed.
    Table(TableError),
    /// The workload does not fit the topology.
    Workload(WorkloadError),
    /// Weighted scheduling got a bad weight vector.
    BadWeights {
        /// Weights supplied.
        got: usize,
        /// Applications in the workload.
        expected: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Routing(e) => write!(f, "routing: {e}"),
            ScheduleError::Table(e) => write!(f, "distance table: {e}"),
            ScheduleError::Workload(e) => write!(f, "workload: {e}"),
            ScheduleError::BadWeights { got, expected } => {
                write!(f, "need {expected} positive weights, got {got}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<RoutingError> for ScheduleError {
    fn from(e: RoutingError) -> Self {
        ScheduleError::Routing(e)
    }
}

impl From<TableError> for ScheduleError {
    fn from(e: TableError) -> Self {
        ScheduleError::Table(e)
    }
}

impl From<WorkloadError> for ScheduleError {
    fn from(e: WorkloadError) -> Self {
        ScheduleError::Workload(e)
    }
}

/// Result of scheduling one workload.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The network partition found by the search.
    pub partition: Partition,
    /// Its quality figures (`F_G`, `D_G`, `Cc`).
    pub quality: Quality,
    /// The realized process-to-processor mapping.
    pub mapping: ProcessMapping,
    /// RNG seed of the winning search restart.
    pub winning_seed: u64,
    /// Multilevel pipeline statistics (multilevel strategy only).
    pub ml: Option<MultilevelStats>,
}

/// The communication-aware scheduler.
pub struct Scheduler {
    topology: Topology,
    routing: Box<dyn Routing>,
    table: DistanceTable,
    approx: Option<ApproxReport>,
    options: SchedulerOptions,
    tabu: TabuParams,
    threads: usize,
    search_seeds: usize,
}

impl Scheduler {
    /// Build the scheduler: constructs the router and the exact table of
    /// equivalent distances for `topology`, flat tabu strategy.
    ///
    /// # Errors
    /// See [`ScheduleError`].
    pub fn new(topology: Topology, routing_kind: RoutingKind) -> Result<Self, ScheduleError> {
        Self::with_options(topology, routing_kind, SchedulerOptions::default())
    }

    /// Build the scheduler with explicit scale knobs: mapping strategy
    /// and (optionally) the certified-interval approximate table solver.
    ///
    /// # Errors
    /// See [`ScheduleError`].
    pub fn with_options(
        topology: Topology,
        routing_kind: RoutingKind,
        options: SchedulerOptions,
    ) -> Result<Self, ScheduleError> {
        let routing: Box<dyn Routing> = match routing_kind {
            RoutingKind::UpDown { root } => Box::new(UpDownRouting::new(&topology, root)?),
            RoutingKind::ShortestPath => Box::new(ShortestPathRouting::new(&topology)?),
        };
        let threads = std::thread::available_parallelism().map_or(4, usize::from);
        let table_options = if options.approx_eps_micros > 0 {
            TableOptions {
                solver: SolverKind::Approximate,
                approx_eps_micros: options.approx_eps_micros,
                threads,
                ..TableOptions::default()
            }
        } else {
            TableOptions {
                threads,
                ..TableOptions::default()
            }
        };
        let (table, approx) =
            equivalent_distance_table_with_report(&topology, routing.as_ref(), table_options)?;
        let tabu = TabuParams::scaled(topology.num_switches());
        Ok(Self {
            topology,
            routing,
            table,
            approx,
            options,
            tabu,
            threads,
            search_seeds: 10,
        })
    }

    /// Override the tabu parameters (paper defaults: 10 seeds, 20
    /// iterations, 3 local-minimum repeats).
    pub fn with_tabu_params(mut self, params: TabuParams) -> Self {
        self.tabu = params;
        self
    }

    /// Set the number of independent search restarts run in parallel.
    pub fn with_search_seeds(mut self, seeds: usize) -> Self {
        self.search_seeds = seeds.max(1);
        self
    }

    /// The scheduled topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The routing model.
    pub fn routing(&self) -> &dyn Routing {
        self.routing.as_ref()
    }

    /// The table of equivalent distances.
    pub fn table(&self) -> &DistanceTable {
        &self.table
    }

    /// The certified error report of the approximate table build, when
    /// [`SchedulerOptions::approx_eps_micros`] was non-zero.
    pub fn approx_report(&self) -> Option<&ApproxReport> {
        self.approx.as_ref()
    }

    /// The scale knobs this scheduler was built with.
    pub fn options(&self) -> &SchedulerOptions {
        &self.options
    }

    /// Quality figures of an arbitrary partition under this scheduler's
    /// distance table.
    pub fn evaluate(&self, partition: &Partition) -> Quality {
        quality(partition, &self.table)
    }

    /// Schedule `workload`: find a near-optimal partition with the tabu
    /// search (multi-seeded, deterministic given `seed`) and place the
    /// processes.
    ///
    /// # Errors
    /// See [`ScheduleError`].
    pub fn schedule(
        &self,
        workload: &Workload,
        seed: u64,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        workload.validate(&self.topology)?;
        let sizes = workload.switch_demands(self.topology.hosts_per_switch());
        let (winning_seed, result, ml) = match self.options.strategy {
            MapStrategy::Flat => {
                let mapper = TabuSearch::new(self.tabu.clone());
                let (winning_seed, result) = parallel_multi_seed(
                    &mapper,
                    &self.table,
                    &sizes,
                    seed,
                    self.search_seeds,
                    self.threads,
                );
                (winning_seed, result, None)
            }
            MapStrategy::Multilevel => {
                let params = MultilevelParams {
                    max_coarse_n: self.options.max_coarse_n,
                    threads: self.threads,
                    ..MultilevelParams::default()
                };
                let (result, stats) = multilevel_map(&self.table, &sizes, seed, &params);
                (seed, result, Some(stats))
            }
        };
        let mapping = ProcessMapping::place(&self.topology, workload, &result.partition)?;
        Ok(ScheduleOutcome {
            quality: self.evaluate(&result.partition),
            partition: result.partition,
            mapping,
            winning_seed,
            ml,
        })
    }

    /// Schedule `workload` against the *weighted* similarity function:
    /// one traffic weight per application (the future-work setting of
    /// unequal communication requirements). Weights can come from
    /// [`crate::estimate::estimate_app_weights`].
    ///
    /// # Errors
    /// See [`ScheduleError`]; requires one strictly positive weight per
    /// application ([`ScheduleError::BadWeights`] otherwise).
    pub fn schedule_weighted(
        &self,
        workload: &Workload,
        weights: &[f64],
        seed: u64,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        workload.validate(&self.topology)?;
        if weights.len() != workload.clusters.len() || weights.iter().any(|&w| w <= 0.0) {
            return Err(ScheduleError::BadWeights {
                got: weights.len(),
                expected: workload.clusters.len(),
            });
        }
        let sizes = workload.switch_demands(self.topology.hosts_per_switch());
        let mut rng = StdRng::seed_from_u64(seed);
        let (result, _) = TabuSearch::new(self.tabu.clone()).search_weighted(
            &self.table,
            &sizes,
            weights,
            &mut rng,
        );
        let mapping = ProcessMapping::place(&self.topology, workload, &result.partition)?;
        Ok(ScheduleOutcome {
            quality: self.evaluate(&result.partition),
            partition: result.partition,
            mapping,
            winning_seed: seed,
            ml: None,
        })
    }

    /// The paper's baseline: place `workload` on a uniformly random
    /// partition (the `R_i` mappings of Figures 3 and 5).
    ///
    /// # Errors
    /// See [`ScheduleError`].
    pub fn random_mapping(
        &self,
        workload: &Workload,
        seed: u64,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        workload.validate(&self.topology)?;
        let sizes = workload.switch_demands(self.topology.hosts_per_switch());
        let mut rng = StdRng::seed_from_u64(seed);
        let partition = Partition::random(self.topology.num_switches(), &sizes, &mut rng)
            .expect("validated workload sizes");
        let mapping = ProcessMapping::place(&self.topology, workload, &partition)?;
        Ok(ScheduleOutcome {
            quality: self.evaluate(&partition),
            partition,
            mapping,
            winning_seed: seed,
            ml: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsched_topology::designed;

    #[test]
    fn schedules_the_designed_network() {
        let topo = designed::paper_24_switch();
        let sched = Scheduler::new(topo, RoutingKind::UpDown { root: 0 }).unwrap();
        let workload = Workload::balanced(sched.topology(), 4).unwrap();
        let outcome = sched.schedule(&workload, 1).unwrap();
        let truth = Partition::from_clusters(&designed::ring_of_rings_clusters(4, 6)).unwrap();
        assert!(outcome.partition.same_grouping(&truth));
        assert!(outcome.quality.cc > 1.0);
        // Mapping covers all 96 hosts.
        assert_eq!(outcome.mapping.num_hosts(), 96);
    }

    #[test]
    fn scheduled_beats_random() {
        let topo = designed::paper_24_switch();
        let sched = Scheduler::new(topo, RoutingKind::UpDown { root: 0 }).unwrap();
        let workload = Workload::balanced(sched.topology(), 4).unwrap();
        let op = sched.schedule(&workload, 1).unwrap();
        for seed in 0..5 {
            let r = sched.random_mapping(&workload, seed).unwrap();
            if r.partition.same_grouping(&op.partition) {
                continue;
            }
            assert!(op.quality.cc > r.quality.cc);
            assert!(op.quality.fg < r.quality.fg);
        }
    }

    #[test]
    fn shortest_path_variant_works() {
        let topo = designed::ring(8, 4);
        let sched = Scheduler::new(topo, RoutingKind::ShortestPath).unwrap();
        let workload = Workload::balanced(sched.topology(), 4).unwrap();
        let outcome = sched.schedule(&workload, 2).unwrap();
        // Ring of 8 into 4 clusters of 2: optimal clusters are adjacent
        // pairs; every cluster's two switches must be neighbours.
        for members in outcome.partition.clusters() {
            assert_eq!(members.len(), 2);
            assert!(sched.topology().has_link(members[0], members[1]));
        }
    }

    #[test]
    fn workload_mismatch_reported() {
        let topo = designed::ring(6, 4);
        let sched = Scheduler::new(topo, RoutingKind::default()).unwrap();
        let bad = Workload::balanced(&designed::ring(8, 4), 4).unwrap();
        assert!(matches!(
            sched.schedule(&bad, 0),
            Err(ScheduleError::Workload(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = designed::ring(8, 4);
        let sched = Scheduler::new(topo, RoutingKind::default()).unwrap();
        let workload = Workload::balanced(sched.topology(), 2).unwrap();
        let a = sched.schedule(&workload, 5).unwrap();
        let b = sched.schedule(&workload, 5).unwrap();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.winning_seed, b.winning_seed);
    }

    #[test]
    fn multilevel_strategy_schedules_the_dumbbell_sized_ring() {
        // Force real coarsening on a small instance (8 → 4 nodes) and
        // check the pipeline still finds the adjacent-pairs optimum.
        let topo = designed::ring(8, 4);
        let options = SchedulerOptions {
            strategy: MapStrategy::Multilevel,
            max_coarse_n: 4,
            ..SchedulerOptions::default()
        };
        let sched = Scheduler::with_options(topo, RoutingKind::ShortestPath, options).unwrap();
        let workload = Workload::balanced(sched.topology(), 4).unwrap();
        let a = sched.schedule(&workload, 2).unwrap();
        let stats = a.ml.expect("multilevel stats present");
        assert_eq!(stats.levels, 1);
        assert_eq!(stats.coarse_n, 4);
        for members in a.partition.clusters() {
            assert!(sched.topology().has_link(members[0], members[1]));
        }
        // Deterministic given the seed.
        let b = sched.schedule(&workload, 2).unwrap();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.quality.fg.to_bits(), b.quality.fg.to_bits());
    }

    #[test]
    fn approximate_table_carries_a_certified_report() {
        let topo = designed::paper_24_switch();
        let options = SchedulerOptions {
            approx_eps_micros: 100_000, // 10%
            ..SchedulerOptions::default()
        };
        let approx =
            Scheduler::with_options(topo.clone(), RoutingKind::UpDown { root: 0 }, options)
                .unwrap();
        let report = approx.approx_report().expect("approximate build reports");
        assert!(report.err_max <= 0.1 + 1e-12, "err {}", report.err_max);
        assert!(report.pairs_approximated + report.pairs_escalated > 0);
        // Exact build never reports.
        let exact = Scheduler::new(topo, RoutingKind::UpDown { root: 0 }).unwrap();
        assert!(exact.approx_report().is_none());
        // Every approximate entry sits within the certified bound of the
        // exact oracle table.
        let n = exact.table().n();
        for a in 0..n {
            for b in 0..n {
                let (e, x) = (exact.table().get(a, b), approx.table().get(a, b));
                if e > 0.0 {
                    assert!(
                        ((x - e) / e).abs() <= report.err_max + 1e-12,
                        "pair ({a},{b}): approx {x} vs exact {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_schedule_validates_and_runs() {
        let topo = designed::paper_24_switch();
        let sched = Scheduler::new(topo, RoutingKind::default()).unwrap();
        let workload = Workload::balanced(sched.topology(), 4).unwrap();
        let outcome = sched
            .schedule_weighted(&workload, &[10.0, 1.0, 1.0, 1.0], 2)
            .unwrap();
        assert_eq!(outcome.mapping.num_hosts(), 96);
        // Wrong weight count rejected.
        assert!(sched.schedule_weighted(&workload, &[1.0], 2).is_err());
        // Non-positive weights rejected.
        assert!(sched
            .schedule_weighted(&workload, &[1.0, 1.0, 0.0, 1.0], 2)
            .is_err());
    }
}
