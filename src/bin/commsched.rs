//! The `commsched` command-line tool: generate networks, schedule
//! workloads, and run flit-level simulations from the shell. See
//! `commsched help` for usage.

use commsched::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args).and_then(|cmd| cli::run(&cmd)) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", cli::USAGE);
            std::process::exit(2);
        }
    }
}
