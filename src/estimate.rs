//! Estimation of application communication requirements from observation.
//!
//! The paper's §6 names "the measurement of the communication requirements
//! of the applications running on the machine" as the first open problem of
//! a complete communication-aware strategy. This module closes the loop at
//! the granularity the weighted criterion needs: given the per-workstation
//! injected-flit counters the simulator (or a real NIC) exposes, estimate a
//! per-application traffic weight, ready to feed
//! `TabuSearch::search_weighted`.

use commsched_core::ClusterId;

/// Errors from weight estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// Input slices disagree in length.
    LengthMismatch {
        /// Host labels provided.
        labels: usize,
        /// Counters provided.
        counters: usize,
    },
    /// No host observed any traffic — nothing to estimate.
    NoTraffic,
    /// Empty input.
    Empty,
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::LengthMismatch { labels, counters } => {
                write!(f, "{labels} host labels vs {counters} counters")
            }
            EstimateError::NoTraffic => write!(f, "no traffic observed"),
            EstimateError::Empty => write!(f, "empty input"),
        }
    }
}

impl std::error::Error for EstimateError {}

/// Estimate one traffic weight per application from per-workstation
/// injected-flit counters: the mean injected volume per process of each
/// application, normalized so the lightest non-idle application has
/// weight 1. Idle applications get a small positive floor (weights must
/// stay positive for the weighted criterion).
///
/// # Errors
/// See [`EstimateError`].
pub fn estimate_app_weights(
    host_clusters: &[ClusterId],
    injected_flits: &[u64],
) -> Result<Vec<f64>, EstimateError> {
    if host_clusters.is_empty() {
        return Err(EstimateError::Empty);
    }
    if host_clusters.len() != injected_flits.len() {
        return Err(EstimateError::LengthMismatch {
            labels: host_clusters.len(),
            counters: injected_flits.len(),
        });
    }
    let apps = host_clusters.iter().max().expect("non-empty") + 1;
    let mut volume = vec![0u64; apps];
    let mut hosts = vec![0u64; apps];
    for (&app, &flits) in host_clusters.iter().zip(injected_flits) {
        volume[app] += flits;
        hosts[app] += 1;
    }
    let per_process: Vec<f64> = volume
        .iter()
        .zip(&hosts)
        .map(|(&v, &h)| if h == 0 { 0.0 } else { v as f64 / h as f64 })
        .collect();
    let floor = per_process
        .iter()
        .copied()
        .filter(|&x| x > 0.0)
        .fold(f64::INFINITY, f64::min);
    if !floor.is_finite() {
        return Err(EstimateError::NoTraffic);
    }
    Ok(per_process
        .iter()
        .map(|&x| if x > 0.0 { x / floor } else { 0.01 })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_traffic_gives_uniform_weights() {
        let labels = vec![0, 0, 1, 1];
        let flits = vec![100, 100, 100, 100];
        let w = estimate_app_weights(&labels, &flits).unwrap();
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn heavy_app_gets_proportional_weight() {
        let labels = vec![0, 0, 1, 1];
        let flits = vec![800, 800, 100, 100];
        let w = estimate_app_weights(&labels, &flits).unwrap();
        assert_eq!(w, vec![8.0, 1.0]);
    }

    #[test]
    fn unbalanced_host_counts_normalized_per_process() {
        // App 0 has 3 hosts with 300 total; app 1 has 1 host with 100:
        // per-process volumes are equal.
        let labels = vec![0, 0, 0, 1];
        let flits = vec![100, 100, 100, 100];
        let w = estimate_app_weights(&labels, &flits).unwrap();
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn idle_app_gets_positive_floor() {
        let labels = vec![0, 0, 1, 1];
        let flits = vec![500, 500, 0, 0];
        let w = estimate_app_weights(&labels, &flits).unwrap();
        assert_eq!(w[0], 1.0);
        assert!(w[1] > 0.0 && w[1] < 0.1);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(
            estimate_app_weights(&[], &[]).unwrap_err(),
            EstimateError::Empty
        );
        assert_eq!(
            estimate_app_weights(&[0, 1], &[1]).unwrap_err(),
            EstimateError::LengthMismatch {
                labels: 2,
                counters: 1
            }
        );
        assert_eq!(
            estimate_app_weights(&[0, 1], &[0, 0]).unwrap_err(),
            EstimateError::NoTraffic
        );
    }
}
