//! Command-line interface plumbing for the `commsched` binary.
//!
//! Subcommands:
//!
//! * `topology`  — generate a network (random or designed) and print it;
//! * `schedule`  — run the communication-aware scheduler on a network;
//! * `simulate`  — one flit-level simulation at a fixed offered load;
//! * `sweep`     — the paper's S1..S9 load sweep for a mapping;
//! * `serve`     — run the long-running scheduling daemon;
//! * `cluster`   — run one node of a sharded, WAL-replicated cluster;
//! * `submit`    — enqueue a job on a daemon and print its id;
//! * `status`    — poll a daemon job's state;
//! * `metrics`   — dump a daemon's Prometheus-format metrics;
//! * `faults`    — inject a link/switch fault into a daemon's topology,
//!   bumping its epoch and repair-refreshing the cached distance table;
//! * `scenario`  — replay an online workload (Poisson or JSONL trace)
//!   through the deterministic scenario engine and print its SLO report,
//!   optionally against the static-mapping baseline and optionally
//!   mirroring the admitted jobs to a live daemon.
//!
//! `schedule` and `sweep` accept `--server host:port` to route through a
//! running daemon (and its distance-table cache) instead of solving
//! locally, and `--trace-out file.jsonl` to record a kernel-level span
//! trace of a local run. Parsing is hand-rolled (`--flag value` pairs)
//! and separated from execution so both halves are unit-testable.

use crate::{RoutingKind, Scheduler, SchedulerOptions};
use commsched_core::{weighted_similarity_fg, Workload};
use commsched_netsim::{paper_sweep, simulate, CongestionMode, SimConfig, SweepConfig};
use commsched_search::MapStrategy;
use commsched_service::{
    Client, PersistOptions, Server, ServerConfig, ServiceCore, ServiceCoreConfig,
};
use commsched_topology::{designed, random_regular, RandomTopologyConfig, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Duration;

/// What a `submit` invocation asks the daemon to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitKind {
    /// A schedule job.
    Schedule,
    /// A schedule-then-load-sweep job.
    Sweep,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Generate and print a topology (optionally saving it to a file).
    Topology {
        /// Network to build.
        spec: TopologySpec,
        /// Optional path to save the text format to.
        save: Option<String>,
    },
    /// Schedule a balanced workload on a topology.
    Schedule {
        /// Network to schedule on.
        topology: TopologySpec,
        /// Number of equal applications.
        clusters: usize,
        /// Search seed.
        seed: u64,
        /// Optional per-application traffic weights.
        weights: Option<Vec<f64>>,
        /// Route through a running daemon instead of solving locally.
        server: Option<String>,
        /// Write a JSONL span trace of the local run to this path.
        trace_out: Option<String>,
        /// Mapping strategy: flat tabu or the multilevel pipeline.
        strategy: MapStrategy,
        /// Multilevel coarsening target (local runs only).
        max_coarse_n: usize,
        /// Approximate-table error budget in millionths (0 = exact).
        approx_eps_micros: u32,
    },
    /// Run one simulation at a fixed rate.
    Simulate {
        /// Network to simulate.
        topology: TopologySpec,
        /// Number of equal applications.
        clusters: usize,
        /// Search seed (the mapping is the scheduled one).
        seed: u64,
        /// Offered load in flits per workstation per cycle.
        rate: f64,
        /// Compare against a random mapping too.
        compare_random: bool,
        /// Virtual channels per physical channel.
        vcs: usize,
        /// Duato's fully adaptive protocol (needs vcs >= 2).
        adaptive: bool,
        /// Congestion regime (off, pfc, ecn-aimd, ecn-dctcp).
        congestion: CongestionMode,
        /// Allow up*/down*-legal adaptive misrouting around hotspots.
        misroute: bool,
    },
    /// Run the paper's S1..S9 sweep.
    Sweep {
        /// Network to sweep.
        topology: TopologySpec,
        /// Number of equal applications.
        clusters: usize,
        /// Search seed.
        seed: u64,
        /// Route through a running daemon instead of solving locally.
        server: Option<String>,
        /// Write a JSONL span trace of the local run to this path.
        trace_out: Option<String>,
        /// Virtual channels per physical channel.
        vcs: usize,
        /// Duato's fully adaptive protocol (needs vcs >= 2).
        adaptive: bool,
        /// Congestion regime (off, pfc, ecn-aimd, ecn-dctcp).
        congestion: CongestionMode,
        /// Allow up*/down*-legal adaptive misrouting around hotspots.
        misroute: bool,
    },
    /// Run the scheduling daemon until a client sends `SHUTDOWN`.
    Serve {
        /// Listen address (`host:port`; port 0 picks an ephemeral one).
        addr: String,
        /// Worker threads.
        workers: usize,
        /// Queue capacity before submissions bounce.
        queue_cap: usize,
        /// Distance-table cache entries.
        cache_cap: usize,
        /// Directory holding the snapshot + write-ahead log.
        state_dir: String,
        /// Run fully in-memory (no WAL, no snapshots, no recovery).
        no_persist: bool,
        /// WAL fsync policy: `always`, `on-ack`, or `never`.
        fsync: commsched_service::FsyncPolicy,
        /// Maximum simultaneous connections (excess get `ERR busy`).
        max_conns: usize,
        /// Close connections idle for this many seconds (0 = never).
        idle_timeout_secs: u64,
    },
    /// Run one node of a sharded scheduler cluster.
    Cluster {
        /// Shard this node serves (primary) or stands by for (follower).
        node_id: u32,
        /// Static member table, identical on every node.
        members: Vec<commsched_cluster::Member>,
        /// Durable state directory (always persistent — replication is
        /// WAL shipping).
        state_dir: String,
        /// Replication strictness (`sync`: acked means replicated).
        repl: commsched_cluster::ReplMode,
        /// Primary: accept followers here (`None` = no replication).
        repl_listen: Option<String>,
        /// Follower: stream the primary's WAL from here, promote when
        /// the primary dies.
        follow: Option<String>,
        /// Worker threads.
        workers: usize,
        /// Queue capacity before submissions bounce.
        queue_cap: usize,
        /// Distance-table cache entries.
        cache_cap: usize,
        /// Virtual points per shard on the hash ring.
        vnodes: usize,
    },
    /// Drive a daemon with an open-loop load and report latency.
    Loadgen {
        /// Daemon address.
        server: String,
        /// Generator settings (connections, rate, batch, duration, mode).
        config: commsched_service::loadgen::LoadgenConfig,
        /// Optional path to also write the JSON report to.
        out: Option<String>,
    },
    /// Enqueue a job on a daemon; prints the job id without waiting.
    Submit {
        /// Daemon address.
        server: String,
        /// Job type.
        kind: SubmitKind,
        /// Network for the job.
        topology: TopologySpec,
        /// Number of equal applications.
        clusters: usize,
        /// Search seed.
        seed: u64,
        /// Sweep points (sweep jobs only).
        points: usize,
        /// Mapping strategy forwarded as `strategy=`.
        strategy: MapStrategy,
        /// Approximate-table budget forwarded as `approx-eps=`.
        approx_eps_micros: u32,
    },
    /// Query a daemon job's state.
    Status {
        /// Daemon address.
        server: String,
        /// Job id.
        job: u64,
    },
    /// Dump a daemon's metrics in Prometheus text format.
    Metrics {
        /// Daemon address.
        server: String,
    },
    /// Run an online-workload scenario and print its SLO report.
    Scenario {
        /// Network the scenario runs on.
        topology: TopologySpec,
        /// Arrival source: `poisson:RATE` (jobs/s) or `trace:FILE`.
        arrivals: String,
        /// Virtual seconds of arrivals to generate (poisson source).
        duration_secs: f64,
        /// Master seed (arrival stream and all remap seeds).
        seed: u64,
        /// Migration policy: `off` or `threshold:X`.
        migration: commsched_scenarios::MigrationPolicy,
        /// Also run the static-mapping baseline and print the delta.
        baseline: bool,
        /// Mirror the trace to a live daemon as real submissions.
        server: Option<String>,
        /// Tabu worker threads (any value gives identical results).
        threads: usize,
        /// Communication slowdown weight β in the speed model.
        beta: f64,
        /// Write the (generated) trace as JSONL to this path.
        dump_trace: Option<String>,
    },
    /// Inject a fault into a daemon-registered topology.
    Faults {
        /// Daemon address.
        server: String,
        /// Fingerprint reference (`--fp HEX`); when absent, the usual
        /// topology flags name the network instead.
        fp: Option<String>,
        /// Network the fault applies to (ignored when `fp` is set).
        topology: TopologySpec,
        /// The event to inject.
        event: FaultArg,
    },
}

/// One fault event as spelled on the command line; validated server-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultArg {
    /// `--kill a:b` — take the link between switches `a` and `b` down.
    Kill(String),
    /// `--restore a:b[:slowdown]` — bring a link (back) up.
    Restore(String),
    /// `--down-switch s` — take switch `s` and all its links down.
    DownSwitch(String),
}

impl FaultArg {
    /// The daemon-protocol `key=value` word for this event.
    fn wire_word(&self) -> String {
        match self {
            FaultArg::Kill(v) => format!("kill={v}"),
            FaultArg::Restore(v) => format!("restore={v}"),
            FaultArg::DownSwitch(v) => format!("switch={v}"),
        }
    }
}

/// How to construct the network.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// Random `degree`-regular network.
    Random {
        /// Switch count.
        switches: usize,
        /// Inter-switch degree.
        degree: usize,
        /// Workstations per switch.
        hosts: usize,
        /// Generator seed.
        seed: u64,
    },
    /// The paper's four-rings-of-six network.
    Paper24,
    /// A ring of `n` switches.
    Ring {
        /// Switch count.
        switches: usize,
        /// Workstations per switch.
        hosts: usize,
    },
    /// Load from a topology file (`commsched_topology::io` text format).
    File {
        /// Path to the file.
        path: String,
    },
}

impl TopologySpec {
    /// Materialize the topology.
    ///
    /// # Errors
    /// Random generation can fail for infeasible parameters.
    pub fn build(&self) -> Result<Topology, String> {
        match self {
            &TopologySpec::Random {
                switches,
                degree,
                hosts,
                seed,
            } => {
                let cfg = RandomTopologyConfig {
                    switches,
                    degree,
                    hosts_per_switch: hosts,
                    max_attempts: 10_000,
                };
                let mut rng = StdRng::seed_from_u64(seed);
                random_regular(cfg, &mut rng).map_err(|e| e.to_string())
            }
            TopologySpec::Paper24 => Ok(designed::paper_24_switch()),
            &TopologySpec::Ring { switches, hosts } => {
                designed::try_ring(switches, hosts).map_err(|e| e.to_string())
            }
            TopologySpec::File { ref path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read '{path}': {e}"))?;
                commsched_topology::from_text(&text).map_err(|e| e.to_string())
            }
        }
    }

    /// The daemon-protocol `topo=...` argument naming this network.
    /// Builtin specs are spelled inline; a file spec is uploaded over
    /// `client` first and referenced by fingerprint.
    fn remote_arg(&self, client: &mut Client) -> Result<String, String> {
        Ok(match self {
            TopologySpec::Paper24 => "topo=paper24".to_string(),
            &TopologySpec::Ring { switches, hosts } => format!("topo=ring:{switches}:{hosts}"),
            &TopologySpec::Random {
                switches,
                degree,
                hosts,
                seed,
            } => format!("topo=random:{switches}:{degree}:{hosts}:{seed}"),
            TopologySpec::File { .. } => {
                let topo = self.build()?;
                let fp = client.add_topology(&topo).map_err(|e| e.to_string())?;
                format!("topo=fp:{fp:016x}")
            }
        })
    }
}

/// Usage text.
pub const USAGE: &str = "\
commsched — communication-aware task scheduling (ICPP 2000 reproduction)

USAGE:
  commsched topology [--kind random|paper24|ring|file] [--switches N]
                     [--degree D] [--hosts H] [--topo-seed S]
                     [--input FILE] [--save FILE]
  commsched schedule <topology flags> [--clusters M] [--seed S]
                     [--weights w1,w2,...] [--server HOST:PORT]
                     [--trace-out FILE.jsonl]
                     [--strategy flat|multilevel] [--max-coarse-n N]
                     [--approx-eps E]
  commsched simulate <topology flags> [--clusters M] [--seed S] [--rate R]
                     [--compare-random] [--vcs V] [--adaptive]
                     [--congestion off|pfc|ecn-aimd|ecn-dctcp] [--misroute]
  commsched sweep    <topology flags> [--clusters M] [--seed S]
                     [--server HOST:PORT] [--trace-out FILE.jsonl]
                     [--vcs V] [--adaptive]
                     [--congestion off|pfc|ecn-aimd|ecn-dctcp] [--misroute]
  commsched serve    [--addr HOST:PORT] [--workers N] [--queue-cap N]
                     [--cache-cap N] [--state-dir DIR] [--no-persist]
                     [--fsync always|on-ack|never] [--max-conns N]
                     [--idle-timeout SECS]
  commsched submit   --server HOST:PORT [--type schedule|sweep]
                     <topology flags> [--clusters M] [--seed S] [--points P]
                     [--strategy flat|multilevel] [--approx-eps E]
  commsched cluster  --node-id K --members 0=H:P,1=H:P,... [--state-dir DIR]
                     [--repl sync|async] [--repl-listen HOST:PORT]
                     [--follow HOST:PORT] [--workers N] [--queue-cap N]
                     [--cache-cap N] [--vnodes N]
  commsched loadgen  --server HOST:PORT [--connections N] [--rate JOBS_PER_S]
                     [--batch N] [--duration SECS] [--mode line|binary]
                     [--spec 'NOOP'] [--max-in-flight N] [--deadline-ms MS]
                     [--out FILE.json]
  commsched scenario [<topology flags>] [--arrivals poisson:RATE|trace:FILE]
                     [--duration SECS] [--seed S]
                     [--migration off|threshold:X] [--baseline]
                     [--server HOST:PORT] [--threads N] [--beta B]
                     [--dump-trace FILE.jsonl]
  commsched status   --server HOST:PORT --job ID
  commsched metrics  --server HOST:PORT
  commsched faults   --server HOST:PORT (--fp HEX | <topology flags>)
                     (--kill A:B | --restore A:B[:SLOWDOWN] | --down-switch S)
  commsched help

DEFAULTS: --kind random --switches 16 --degree 3 --hosts 4 --topo-seed 2000
          --clusters 4 --seed 42 --rate 0.1 --vcs 1 --congestion off
          --addr 127.0.0.1:7477
          --strategy flat --max-coarse-n 256 --approx-eps 0 (exact table)
          --state-dir commsched-state --fsync on-ack --max-conns 10240
          loadgen: --connections 16 --rate 1000 --batch 1 --duration 5
          scenario: --kind paper24 --arrivals poisson:50 --duration 10
                    --migration off --threads 1 --beta 3
";

/// Render an average latency for humans: `"-"` when nothing was
/// delivered (the accessor hides the NaN), one decimal otherwise.
fn fmt_latency(lat: Option<f64>) -> String {
    lat.map_or_else(|| "-".to_string(), |l| format!("{l:.1}"))
}

fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut map = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument '{a}'"));
        };
        if key == "compare-random"
            || key == "adaptive"
            || key == "misroute"
            || key == "no-persist"
            || key == "baseline"
        {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag --{key} needs a value"));
        };
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn parse_topology(
    flags: &std::collections::HashMap<String, String>,
) -> Result<TopologySpec, String> {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let kind = get("kind", "random");
    let switches: usize = get("switches", "16")
        .parse()
        .map_err(|_| "bad --switches")?;
    let hosts: usize = get("hosts", "4").parse().map_err(|_| "bad --hosts")?;
    match kind.as_str() {
        "random" => Ok(TopologySpec::Random {
            switches,
            degree: get("degree", "3").parse().map_err(|_| "bad --degree")?,
            hosts,
            seed: get("topo-seed", "2000")
                .parse()
                .map_err(|_| "bad --topo-seed")?,
        }),
        "paper24" => Ok(TopologySpec::Paper24),
        "ring" => Ok(TopologySpec::Ring { switches, hosts }),
        "file" => Ok(TopologySpec::File {
            path: flags
                .get("input")
                .cloned()
                .ok_or("kind 'file' needs --input <path>")?,
        }),
        other => Err(format!("unknown topology kind '{other}'")),
    }
}

/// Parse the scale flags shared by `schedule` and `submit`:
/// `--strategy`, `--max-coarse-n`, `--approx-eps` (a fraction, stored in
/// millionths so the spec stays integral end to end).
fn parse_scale_flags(
    flags: &std::collections::HashMap<String, String>,
) -> Result<(MapStrategy, usize, u32), String> {
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let strategy: MapStrategy = get("strategy", "flat").parse()?;
    let max_coarse_n: usize = get("max-coarse-n", "256")
        .parse()
        .map_err(|_| "bad --max-coarse-n")?;
    let eps: f64 = get("approx-eps", "0")
        .parse()
        .map_err(|_| "bad --approx-eps")?;
    if !eps.is_finite() || eps < 0.0 {
        return Err("bad --approx-eps (need a finite fraction >= 0)".into());
    }
    Ok((
        strategy,
        max_coarse_n,
        commsched_distance::eps_to_micros(eps),
    ))
}

/// Parse an argument list (without the program name).
///
/// # Errors
/// Returns a human-readable message on malformed input.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let flags = parse_flags(&args[1..])?;
    let get = |k: &str, d: &str| flags.get(k).cloned().unwrap_or_else(|| d.to_string());
    let clusters: usize = get("clusters", "4").parse().map_err(|_| "bad --clusters")?;
    let seed: u64 = get("seed", "42").parse().map_err(|_| "bad --seed")?;
    let server = flags.get("server").cloned();
    let trace_out = flags.get("trace-out").cloned();
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "topology" => Ok(Command::Topology {
            spec: parse_topology(&flags)?,
            save: flags.get("save").cloned(),
        }),
        "schedule" => {
            let (strategy, max_coarse_n, approx_eps_micros) = parse_scale_flags(&flags)?;
            Ok(Command::Schedule {
                topology: parse_topology(&flags)?,
                clusters,
                seed,
                weights: match flags.get("weights") {
                    None => None,
                    Some(ws) => Some(
                        ws.split(',')
                            .map(|w| w.parse::<f64>().map_err(|_| "bad --weights".to_string()))
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                },
                server,
                trace_out,
                strategy,
                max_coarse_n,
                approx_eps_micros,
            })
        }
        "simulate" => Ok(Command::Simulate {
            topology: parse_topology(&flags)?,
            clusters,
            seed,
            rate: get("rate", "0.1").parse().map_err(|_| "bad --rate")?,
            compare_random: flags.contains_key("compare-random"),
            vcs: get("vcs", "1").parse().map_err(|_| "bad --vcs")?,
            adaptive: flags.contains_key("adaptive"),
            congestion: CongestionMode::parse(&get("congestion", "off"))?,
            misroute: flags.contains_key("misroute"),
        }),
        "sweep" => Ok(Command::Sweep {
            topology: parse_topology(&flags)?,
            clusters,
            seed,
            server,
            trace_out,
            vcs: get("vcs", "1").parse().map_err(|_| "bad --vcs")?,
            adaptive: flags.contains_key("adaptive"),
            congestion: CongestionMode::parse(&get("congestion", "off"))?,
            misroute: flags.contains_key("misroute"),
        }),
        "serve" => Ok(Command::Serve {
            addr: get("addr", "127.0.0.1:7477"),
            workers: get("workers", "2").parse().map_err(|_| "bad --workers")?,
            queue_cap: get("queue-cap", "16")
                .parse()
                .map_err(|_| "bad --queue-cap")?,
            cache_cap: get("cache-cap", "8")
                .parse()
                .map_err(|_| "bad --cache-cap")?,
            state_dir: get("state-dir", "commsched-state"),
            no_persist: flags.contains_key("no-persist"),
            fsync: match get("fsync", "on-ack").as_str() {
                "always" => commsched_service::FsyncPolicy::Always,
                "on-ack" => commsched_service::FsyncPolicy::OnAck,
                "never" => commsched_service::FsyncPolicy::Never,
                other => return Err(format!("bad --fsync '{other}' (always|on-ack|never)")),
            },
            max_conns: get("max-conns", "10240")
                .parse()
                .map_err(|_| "bad --max-conns")?,
            idle_timeout_secs: get("idle-timeout", "0")
                .parse()
                .map_err(|_| "bad --idle-timeout")?,
        }),
        "cluster" => Ok(Command::Cluster {
            node_id: get("node-id", "")
                .parse()
                .map_err(|_| "cluster needs --node-id <shard>")?,
            members: commsched_cluster::parse_members(
                flags
                    .get("members")
                    .ok_or("cluster needs --members shard=addr,...")?,
            )?,
            state_dir: get("state-dir", "commsched-cluster-state"),
            repl: commsched_cluster::ReplMode::parse(&get("repl", "sync"))?,
            repl_listen: flags.get("repl-listen").cloned(),
            follow: flags.get("follow").cloned(),
            workers: get("workers", "2").parse().map_err(|_| "bad --workers")?,
            queue_cap: get("queue-cap", "16")
                .parse()
                .map_err(|_| "bad --queue-cap")?,
            cache_cap: get("cache-cap", "8")
                .parse()
                .map_err(|_| "bad --cache-cap")?,
            vnodes: get("vnodes", "128").parse().map_err(|_| "bad --vnodes")?,
        }),
        "loadgen" => Ok(Command::Loadgen {
            server: server.ok_or("loadgen needs --server <host:port>")?,
            config: commsched_service::loadgen::LoadgenConfig {
                connections: get("connections", "16")
                    .parse()
                    .map_err(|_| "bad --connections")?,
                rate: get("rate", "1000").parse().map_err(|_| "bad --rate")?,
                batch: get("batch", "1").parse().map_err(|_| "bad --batch")?,
                duration: Duration::from_secs_f64(
                    get("duration", "5").parse().map_err(|_| "bad --duration")?,
                ),
                mode: commsched_service::loadgen::WireMode::parse(&get("mode", "line"))?,
                spec: get("spec", "NOOP"),
                max_in_flight: get("max-in-flight", "0")
                    .parse()
                    .map_err(|_| "bad --max-in-flight")?,
                deadline_ms: match flags.get("deadline-ms") {
                    None => None,
                    Some(v) => Some(v.parse().map_err(|_| "bad --deadline-ms")?),
                },
            },
            out: flags.get("out").cloned(),
        }),
        "scenario" => Ok(Command::Scenario {
            // An online scenario defaults to the paper's network unless
            // topology flags say otherwise.
            topology: if flags.contains_key("kind") {
                parse_topology(&flags)?
            } else {
                TopologySpec::Paper24
            },
            arrivals: get("arrivals", "poisson:50"),
            duration_secs: {
                let d: f64 = get("duration", "10")
                    .parse()
                    .map_err(|_| "bad --duration")?;
                if !d.is_finite() || d <= 0.0 {
                    return Err("bad --duration (need seconds > 0)".into());
                }
                d
            },
            seed,
            migration: commsched_scenarios::MigrationPolicy::parse(&get("migration", "off"))?,
            baseline: flags.contains_key("baseline"),
            server,
            threads: get("threads", "1").parse().map_err(|_| "bad --threads")?,
            beta: {
                let b: f64 = get("beta", "3").parse().map_err(|_| "bad --beta")?;
                if !b.is_finite() || b < 0.0 {
                    return Err("bad --beta (need a finite weight >= 0)".into());
                }
                b
            },
            dump_trace: flags.get("dump-trace").cloned(),
        }),
        "submit" => {
            let (strategy, _, approx_eps_micros) = parse_scale_flags(&flags)?;
            Ok(Command::Submit {
                server: server.ok_or("submit needs --server <host:port>")?,
                kind: match get("type", "schedule").as_str() {
                    "schedule" => SubmitKind::Schedule,
                    "sweep" => SubmitKind::Sweep,
                    other => return Err(format!("unknown job type '{other}'")),
                },
                topology: parse_topology(&flags)?,
                clusters,
                seed,
                points: get("points", "9").parse().map_err(|_| "bad --points")?,
                strategy,
                approx_eps_micros,
            })
        }
        "status" => Ok(Command::Status {
            server: server.ok_or("status needs --server <host:port>")?,
            job: get("job", "")
                .parse()
                .map_err(|_| "status needs --job <id>")?,
        }),
        "metrics" => Ok(Command::Metrics {
            server: server.ok_or("metrics needs --server <host:port>")?,
        }),
        "faults" => {
            let events: Vec<FaultArg> = [
                flags.get("kill").cloned().map(FaultArg::Kill),
                flags.get("restore").cloned().map(FaultArg::Restore),
                flags.get("down-switch").cloned().map(FaultArg::DownSwitch),
            ]
            .into_iter()
            .flatten()
            .collect();
            let [event] = <[FaultArg; 1]>::try_from(events).map_err(|_| {
                "faults needs exactly one of --kill, --restore, --down-switch".to_string()
            })?;
            Ok(Command::Faults {
                server: server.ok_or("faults needs --server <host:port>")?,
                fp: flags.get("fp").cloned(),
                topology: parse_topology(&flags)?,
                event,
            })
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Build the local end-to-end pipeline once per invocation: topology,
/// routing, and the table of equivalent distances live in one
/// [`Scheduler`] that every step of the subcommand reuses.
fn build_scheduler(spec: &TopologySpec, options: SchedulerOptions) -> Result<Scheduler, String> {
    let topo = spec.build()?;
    Scheduler::with_options(topo, RoutingKind::UpDown { root: 0 }, options)
        .map_err(|e| e.to_string())
}

/// Extra `key=value` words forwarding non-default scale flags to a
/// daemon's job spec.
fn remote_scale_args(strategy: MapStrategy, approx_eps_micros: u32) -> String {
    let mut extra = String::new();
    if strategy != MapStrategy::Flat {
        write!(extra, " strategy={strategy}").expect("write to string");
    }
    if approx_eps_micros > 0 {
        write!(extra, " approx-eps={}", f64::from(approx_eps_micros) / 1e6)
            .expect("write to string");
    }
    extra
}

/// Materialize a scenario arrival stream from its CLI spelling:
/// `poisson:RATE` generates the skewed synthetic mix sized to the
/// topology; `trace:FILE` replays a JSONL file.
fn build_scenario_trace(
    arrivals: &str,
    topo: &Topology,
    duration_secs: f64,
    seed: u64,
) -> Result<Vec<commsched_scenarios::JobArrival>, String> {
    if let Some(rate) = arrivals.strip_prefix("poisson:") {
        let rate: f64 = rate
            .parse()
            .map_err(|_| format!("bad poisson rate '{rate}'"))?;
        if !rate.is_finite() || rate <= 0.0 {
            return Err("poisson rate must be > 0 jobs/s".into());
        }
        let shape = commsched_scenarios::WorkloadShape::skewed(
            topo.num_switches(),
            topo.hosts_per_switch(),
        );
        let duration_us = (duration_secs * 1e6) as u64;
        return Ok(commsched_scenarios::poisson_trace(
            rate,
            duration_us,
            seed,
            &shape,
        ));
    }
    if let Some(path) = arrivals.strip_prefix("trace:") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        return commsched_scenarios::parse_trace(&text).map_err(|e| e.to_string());
    }
    Err(format!(
        "bad --arrivals '{arrivals}' (expected poisson:RATE | trace:FILE)"
    ))
}

/// Mirror a scenario trace to a live daemon: every arrival becomes a
/// real `NOOP` submission carrying its memory demand and (relative)
/// deadline, batched over one connection, then awaited. Returns how
/// many ran to `done`.
fn mirror_scenario_trace(
    server: &str,
    trace: &[commsched_scenarios::JobArrival],
) -> Result<u64, String> {
    let mut client =
        Client::connect(server).map_err(|e| format!("cannot reach server '{server}': {e}"))?;
    let specs: Vec<String> = trace
        .iter()
        .map(|a| {
            let mut spec = "NOOP".to_string();
            if let Some(d) = a.deadline_us {
                let rel_ms = d.saturating_sub(a.t_us).div_ceil(1000).max(1);
                write!(spec, " deadline-ms={rel_ms}").expect("write to string");
            }
            let mem = a.total_mem();
            if mem > 0 {
                write!(spec, " mem={mem}").expect("write to string");
            }
            spec
        })
        .collect();
    let acks = client.submit_batch(&specs).map_err(|e| e.to_string())?;
    let mut done = 0u64;
    for ack in acks {
        let id = ack.map_err(|e| format!("daemon rejected mirrored job: {e}"))?;
        let state = client
            .wait(id, Duration::from_millis(5))
            .map_err(|e| e.to_string())?;
        if state == "done" {
            done += 1;
        }
    }
    Ok(done)
}

/// Submit over the wire, wait, and return the result payload lines.
fn run_remote_job(
    server: &str,
    topology: &TopologySpec,
    kind_word: &str,
    args: &str,
) -> Result<Vec<String>, String> {
    let mut client =
        Client::connect(server).map_err(|e| format!("cannot reach server '{server}': {e}"))?;
    let topo_arg = topology.remote_arg(&mut client)?;
    let job = client
        .submit_raw(&format!("{kind_word} {topo_arg} {args}"))
        .map_err(|e| e.to_string())?;
    let state = client
        .wait(job, Duration::from_millis(50))
        .map_err(|e| e.to_string())?;
    if state != "done" {
        return Err(format!("job {job} ended {state}"));
    }
    client.result(job).map_err(|e| e.to_string())
}

/// Execute a parsed command; returns the text to print.
///
/// # Errors
/// Propagates construction/scheduling/simulation failures as strings.
pub fn run(cmd: &Command) -> Result<String, String> {
    let trace_out = match cmd {
        Command::Schedule { trace_out, .. } | Command::Sweep { trace_out, .. } => trace_out.clone(),
        _ => None,
    };
    let Some(path) = trace_out else {
        return run_inner(cmd);
    };
    // Arm tracing only around this invocation; drain whatever the solver
    // kernels recorded (distance builds, tabu search, netsim cycles) and
    // write it as JSON lines, one event per line.
    commsched_telemetry::set_tracing(true);
    let result = run_inner(cmd);
    commsched_telemetry::set_tracing(false);
    let (events, dropped) = commsched_telemetry::trace::drain();
    let mut result = result?;
    let file = std::fs::File::create(&path)
        .map_err(|e| format!("cannot create trace file '{path}': {e}"))?;
    commsched_telemetry::trace::export_jsonl(&events, std::io::BufWriter::new(file))
        .map_err(|e| format!("cannot write trace file '{path}': {e}"))?;
    writeln!(
        result,
        "trace: {} events written to {path} ({dropped} dropped)",
        events.len()
    )
    .expect("write to string");
    Ok(result)
}

fn run_inner(cmd: &Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Topology { spec, save } => {
            let topo = spec.build()?;
            writeln!(
                out,
                "switches: {}  links: {}  workstations: {}  diameter: {:?}",
                topo.num_switches(),
                topo.num_links(),
                topo.num_hosts(),
                topo.diameter()
            )
            .expect("write to string");
            for l in topo.links() {
                writeln!(out, "{} -- {}", l.a, l.b).expect("write to string");
            }
            if let Some(path) = save {
                std::fs::write(path, commsched_topology::to_text(&topo))
                    .map_err(|e| format!("cannot write '{path}': {e}"))?;
                writeln!(out, "saved to {path}").expect("write to string");
            }
        }
        Command::Schedule {
            topology,
            clusters,
            seed,
            weights,
            server,
            trace_out: _,
            strategy,
            max_coarse_n,
            approx_eps_micros,
        } => {
            if let Some(server) = server {
                if weights.is_some() {
                    return Err("--weights is not supported with --server".into());
                }
                let extra = remote_scale_args(*strategy, *approx_eps_micros);
                let lines = run_remote_job(
                    server,
                    topology,
                    "SCHEDULE",
                    &format!("clusters={clusters} seed={seed}{extra}"),
                )?;
                for l in lines {
                    writeln!(out, "{l}").expect("write to string");
                }
                return Ok(out);
            }
            let options = SchedulerOptions {
                strategy: *strategy,
                max_coarse_n: *max_coarse_n,
                approx_eps_micros: *approx_eps_micros,
            };
            let sched = build_scheduler(topology, options)?;
            let wl = Workload::balanced(sched.topology(), *clusters).map_err(|e| e.to_string())?;
            match weights {
                None => {
                    let o = sched.schedule(&wl, *seed).map_err(|e| e.to_string())?;
                    writeln!(out, "partition: {}", o.partition).expect("write to string");
                    writeln!(
                        out,
                        "F_G = {:.6}  D_G = {:.6}  Cc = {:.3}",
                        o.quality.fg, o.quality.dg, o.quality.cc
                    )
                    .expect("write to string");
                    if let Some(ml) = &o.ml {
                        writeln!(
                            out,
                            "strategy: multilevel  levels = {}  coarse_n = {}  refine_moves = {}",
                            ml.levels, ml.coarse_n, ml.refine_moves
                        )
                        .expect("write to string");
                    }
                    if let Some(rep) = sched.approx_report() {
                        writeln!(
                            out,
                            "approx table: eps = {}  err_max = {:.3e}  pairs = {}  escalated = {}",
                            rep.eps, rep.err_max, rep.pairs_approximated, rep.pairs_escalated
                        )
                        .expect("write to string");
                    }
                }
                Some(ws) => {
                    if ws.len() != wl.clusters.len() {
                        return Err("need one weight per cluster".into());
                    }
                    let o = sched
                        .schedule_weighted(&wl, ws, *seed)
                        .map_err(|e| e.to_string())?;
                    writeln!(out, "partition: {}", o.partition).expect("write to string");
                    writeln!(
                        out,
                        "weighted F_G = {:.6}",
                        weighted_similarity_fg(&o.partition, sched.table(), ws)
                    )
                    .expect("write to string");
                }
            }
        }
        Command::Simulate {
            topology,
            clusters,
            seed,
            rate,
            compare_random,
            vcs,
            adaptive,
            congestion,
            misroute,
        } => {
            let sched = build_scheduler(topology, SchedulerOptions::default())?;
            let wl = Workload::balanced(sched.topology(), *clusters).map_err(|e| e.to_string())?;
            let o = sched.schedule(&wl, *seed).map_err(|e| e.to_string())?;
            let cfg = SimConfig {
                virtual_channels: *vcs,
                fully_adaptive: *adaptive,
                congestion: *congestion,
                adaptive_misroute: *misroute,
                ..SimConfig::default().with_rate(*rate)
            };
            let stats = simulate(
                sched.topology(),
                sched.routing(),
                o.mapping.host_clusters(),
                cfg,
            )
            .map_err(|e| e.to_string())?;
            writeln!(
                out,
                "scheduled: accepted = {:.4} flits/switch/cycle, latency = {} cycles{}",
                stats.accepted_flits_per_switch_cycle,
                fmt_latency(stats.network_latency()),
                if stats.deadlocked { " [DEADLOCK]" } else { "" }
            )
            .expect("write to string");
            if *congestion != CongestionMode::Off || *misroute {
                writeln!(
                    out,
                    "congestion ({congestion}{}): ecn_marks = {}  pfc_pauses = {}  \
                     pause_cycles = {}  misroutes = {}",
                    if *misroute { "+misroute" } else { "" },
                    stats.ecn_marks,
                    stats.pfc_pauses,
                    stats.pfc_pause_cycles,
                    stats.misroutes
                )
                .expect("write to string");
            }
            if stats.stalled_flits > 0 {
                writeln!(
                    out,
                    "stalled: {} flits ({} behind dead links, {} flow-control paused)",
                    stats.stalled_flits, stats.stall_dead_link_flits, stats.stall_paused_flits
                )
                .expect("write to string");
            }
            if *compare_random {
                let r = sched
                    .random_mapping(&wl, *seed)
                    .map_err(|e| e.to_string())?;
                let rs = simulate(
                    sched.topology(),
                    sched.routing(),
                    r.mapping.host_clusters(),
                    cfg,
                )
                .map_err(|e| e.to_string())?;
                writeln!(
                    out,
                    "random:    accepted = {:.4} flits/switch/cycle, latency = {} cycles",
                    rs.accepted_flits_per_switch_cycle,
                    fmt_latency(rs.network_latency())
                )
                .expect("write to string");
            }
        }
        Command::Sweep {
            topology,
            clusters,
            seed,
            server,
            trace_out: _,
            vcs,
            adaptive,
            congestion,
            misroute,
        } => {
            if let Some(server) = server {
                if *congestion != CongestionMode::Off || *misroute || *adaptive || *vcs != 1 {
                    return Err("--congestion/--misroute/--adaptive/--vcs are local-only; \
                         drop --server to use them"
                        .into());
                }
                let lines = run_remote_job(
                    server,
                    topology,
                    "SWEEP",
                    &format!("clusters={clusters} seed={seed}"),
                )?;
                for l in lines {
                    writeln!(out, "{l}").expect("write to string");
                }
                return Ok(out);
            }
            let sched = build_scheduler(topology, SchedulerOptions::default())?;
            let wl = Workload::balanced(sched.topology(), *clusters).map_err(|e| e.to_string())?;
            let o = sched.schedule(&wl, *seed).map_err(|e| e.to_string())?;
            let cfg = SimConfig {
                virtual_channels: *vcs,
                fully_adaptive: *adaptive,
                congestion: *congestion,
                adaptive_misroute: *misroute,
                ..SimConfig::default()
            };
            let (sweep, sat) = paper_sweep(
                sched.topology(),
                sched.routing(),
                o.mapping.host_clusters(),
                cfg,
                SweepConfig::default(),
            )
            .map_err(|e| e.to_string())?;
            if *congestion != CongestionMode::Off || *misroute {
                writeln!(
                    out,
                    "regime: {congestion}{}",
                    if *misroute { "+misroute" } else { "" }
                )
                .expect("write to string");
            }
            writeln!(out, "saturation ~ {sat:.3} flits/host/cycle").expect("write to string");
            writeln!(
                out,
                "point  offered(f/host/cy)  accepted(f/sw/cy)  latency(cy)"
            )
            .expect("write to string");
            for (i, p) in sweep.points.iter().enumerate() {
                writeln!(
                    out,
                    "S{:<5} {:>14.4} {:>18.4} {:>12}",
                    i + 1,
                    p.rate,
                    p.stats.accepted_flits_per_switch_cycle,
                    fmt_latency(p.stats.network_latency())
                )
                .expect("write to string");
            }
        }
        Command::Serve {
            addr,
            workers,
            queue_cap,
            cache_cap,
            state_dir,
            no_persist,
            fsync,
            max_conns,
            idle_timeout_secs,
        } => {
            let core_config = ServiceCoreConfig {
                queue_capacity: *queue_cap,
                cache_capacity: *cache_cap,
                ..Default::default()
            };
            let net = commsched_net::NetConfig {
                max_connections: *max_conns,
                idle_timeout: (*idle_timeout_secs > 0)
                    .then(|| Duration::from_secs(*idle_timeout_secs)),
                ..Default::default()
            };
            let handle = if *no_persist {
                let config = ServerConfig {
                    workers: *workers,
                    core: core_config,
                    net,
                };
                Server::bind(addr.as_str(), config).map_err(|e| e.to_string())?
            } else {
                let (core, report) =
                    ServiceCore::recover(core_config, PersistOptions::new(state_dir).fsync(*fsync))
                        .map_err(|e| format!("cannot recover state from '{state_dir}': {e}"))?;
                println!(
                    "recovered from {state_dir}: {} jobs requeued, {} topologies, \
                     {} cached tables ({} snapshot + {} wal records{})",
                    report.recovered_jobs,
                    report.recovered_topologies,
                    report.restored_tables,
                    report.snapshot_records,
                    report.wal_records,
                    if report.torn_tail {
                        ", torn wal tail"
                    } else {
                        ""
                    }
                );
                Server::bind_with_core_config(
                    addr.as_str(),
                    *workers,
                    net,
                    std::sync::Arc::new(core),
                )
                .map_err(|e| e.to_string())?
            };
            // Print immediately: clients need the (possibly ephemeral)
            // port while the daemon blocks below.
            println!("commsched-service listening on {}", handle.addr());
            handle.join();
            writeln!(out, "server drained and stopped").expect("write to string");
        }
        Command::Submit {
            server,
            kind,
            topology,
            clusters,
            seed,
            points,
            strategy,
            approx_eps_micros,
        } => {
            let mut client = Client::connect(server.as_str())
                .map_err(|e| format!("cannot reach server '{server}': {e}"))?;
            let topo_arg = topology.remote_arg(&mut client)?;
            let extra = remote_scale_args(*strategy, *approx_eps_micros);
            let line = match kind {
                SubmitKind::Schedule => {
                    format!("SCHEDULE {topo_arg} clusters={clusters} seed={seed}{extra}")
                }
                SubmitKind::Sweep => {
                    format!(
                        "SWEEP {topo_arg} clusters={clusters} seed={seed} points={points}{extra}"
                    )
                }
            };
            let job = client.submit_raw(&line).map_err(|e| e.to_string())?;
            writeln!(out, "job {job}").expect("write to string");
        }
        Command::Cluster {
            node_id,
            members,
            state_dir,
            repl,
            repl_listen,
            follow,
            workers,
            queue_cap,
            cache_cap,
            vnodes,
        } => {
            let mut config =
                commsched_cluster::ClusterConfig::new(*node_id, members.clone(), state_dir);
            config.repl = *repl;
            config.repl_listen = repl_listen.clone();
            config.follow = follow.clone();
            config.workers = *workers;
            config.vnodes = *vnodes;
            config.core = ServiceCoreConfig {
                queue_capacity: *queue_cap,
                cache_capacity: *cache_cap,
                ..Default::default()
            };
            if follow.is_some() {
                // Standby: stream the primary's WAL; when the primary
                // dies, promote and keep serving until shutdown.
                println!(
                    "commsched-cluster node {node_id} following {}",
                    follow.as_deref().unwrap_or_default()
                );
                let stop = std::sync::atomic::AtomicBool::new(false);
                let progress = std::sync::Arc::new(commsched_cluster::FollowerProgress::default());
                match commsched_cluster::follow_and_promote(&config, &stop, &progress)? {
                    None => {
                        writeln!(out, "follower stopped before promotion").expect("write to string")
                    }
                    Some(node) => {
                        println!(
                            "commsched-cluster node {node_id} promoted, listening on {}",
                            node.addr()
                        );
                        node.join();
                        writeln!(out, "promoted node drained and stopped")
                            .expect("write to string");
                    }
                }
            } else {
                let node = commsched_cluster::start_primary(&config)?;
                println!(
                    "recovered from {state_dir}: {} jobs requeued, {} topologies",
                    node.recovery.recovered_jobs, node.recovery.recovered_topologies
                );
                if let Some(hub) = node.hub() {
                    println!("replication listening on {}", hub.listen_addr());
                }
                println!(
                    "commsched-cluster node {node_id} primary listening on {}",
                    node.addr()
                );
                node.join();
                writeln!(out, "cluster node drained and stopped").expect("write to string");
            }
        }
        Command::Loadgen {
            server,
            config,
            out: out_path,
        } => {
            let report = commsched_service::loadgen::run(server.as_str(), config)?;
            let json = report.to_json();
            if let Some(path) = out_path {
                std::fs::write(path, format!("{json}\n"))
                    .map_err(|e| format!("cannot write '{path}': {e}"))?;
            }
            writeln!(out, "{json}").expect("write to string");
        }
        Command::Status { server, job } => {
            let mut client = Client::connect(server.as_str())
                .map_err(|e| format!("cannot reach server '{server}': {e}"))?;
            let state = client.status(*job).map_err(|e| e.to_string())?;
            writeln!(out, "job {job}: {state}").expect("write to string");
        }
        Command::Metrics { server } => {
            let mut client = Client::connect(server.as_str())
                .map_err(|e| format!("cannot reach server '{server}': {e}"))?;
            for l in client.metrics().map_err(|e| e.to_string())? {
                writeln!(out, "{l}").expect("write to string");
            }
        }
        Command::Scenario {
            topology,
            arrivals,
            duration_secs,
            seed,
            migration,
            baseline,
            server,
            threads,
            beta,
            dump_trace,
        } => {
            let topo = topology.build()?;
            let trace = build_scenario_trace(arrivals, &topo, *duration_secs, *seed)?;
            if let Some(path) = dump_trace {
                std::fs::write(path, commsched_scenarios::format_trace(&trace))
                    .map_err(|e| format!("cannot write '{path}': {e}"))?;
                writeln!(out, "trace: {} arrivals written to {path}", trace.len())
                    .expect("write to string");
            }
            let mut cfg = commsched_scenarios::ScenarioConfig::new(topo);
            cfg.migration = *migration;
            cfg.seed = *seed;
            cfg.threads = *threads;
            cfg.beta = *beta;
            let report =
                commsched_scenarios::run_scenario(&cfg, &trace).map_err(|e| e.to_string())?;
            if *baseline {
                let mut base_cfg = cfg.clone();
                base_cfg.migration = commsched_scenarios::MigrationPolicy::Off;
                let base = commsched_scenarios::run_scenario(&base_cfg, &trace)
                    .map_err(|e| e.to_string())?;
                writeln!(out, "--- baseline (static mapping) ---").expect("write to string");
                writeln!(out, "{base}").expect("write to string");
                writeln!(out, "--- scenario ({}) ---", cfg.migration).expect("write to string");
                writeln!(out, "{report}").expect("write to string");
                writeln!(
                    out,
                    "compare attainment={:.2}% vs baseline {:.2}% ({:+.2} pp)  \
                     p99={}us vs {}us  makespan={}us vs {}us",
                    report.deadline_attainment() * 100.0,
                    base.deadline_attainment() * 100.0,
                    (report.deadline_attainment() - base.deadline_attainment()) * 100.0,
                    report.response_p99_us,
                    base.response_p99_us,
                    report.makespan_us,
                    base.makespan_us,
                )
                .expect("write to string");
            } else {
                writeln!(out, "{report}").expect("write to string");
            }
            if let Some(server) = server {
                let acked = mirror_scenario_trace(server, &trace)?;
                writeln!(
                    out,
                    "daemon mirror: {acked}/{} jobs done on {server}",
                    trace.len()
                )
                .expect("write to string");
            }
        }
        Command::Faults {
            server,
            fp,
            topology,
            event,
        } => {
            let mut client = Client::connect(server.as_str())
                .map_err(|e| format!("cannot reach server '{server}': {e}"))?;
            let topo_arg = match fp {
                Some(hex) => format!("topo=fp:{hex}"),
                None => topology.remote_arg(&mut client)?,
            };
            let lines = client
                .fault_raw(&format!("{topo_arg} {}", event.wire_word()))
                .map_err(|e| e.to_string())?;
            for l in lines {
                writeln!(out, "{l}").expect("write to string");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn parse_topology_defaults() {
        let cmd = parse(&argv("topology")).unwrap();
        assert_eq!(
            cmd,
            Command::Topology {
                spec: TopologySpec::Random {
                    switches: 16,
                    degree: 3,
                    hosts: 4,
                    seed: 2000
                },
                save: None,
            }
        );
    }

    #[test]
    fn parse_schedule_with_weights() {
        let cmd = parse(&argv(
            "schedule --kind paper24 --clusters 4 --seed 7 --weights 10,1,1,1",
        ))
        .unwrap();
        match cmd {
            Command::Schedule {
                topology,
                clusters,
                seed,
                weights,
                server,
                trace_out,
                strategy,
                max_coarse_n,
                approx_eps_micros,
            } => {
                assert_eq!(topology, TopologySpec::Paper24);
                assert_eq!(clusters, 4);
                assert_eq!(seed, 7);
                assert_eq!(weights, Some(vec![10.0, 1.0, 1.0, 1.0]));
                assert_eq!(server, None);
                assert_eq!(trace_out, None);
                assert_eq!(strategy, MapStrategy::Flat);
                assert_eq!(max_coarse_n, 256);
                assert_eq!(approx_eps_micros, 0);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_scale_flags_round_trip() {
        match parse(&argv(
            "schedule --kind ring --switches 16 --strategy multilevel \
             --max-coarse-n 8 --approx-eps 0.05",
        ))
        .unwrap()
        {
            Command::Schedule {
                strategy,
                max_coarse_n,
                approx_eps_micros,
                ..
            } => {
                assert_eq!(strategy, MapStrategy::Multilevel);
                assert_eq!(max_coarse_n, 8);
                assert_eq!(approx_eps_micros, 50_000);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Submit forwards the same flags.
        match parse(&argv(
            "submit --server h:1 --kind paper24 --strategy multilevel --approx-eps 0.1",
        ))
        .unwrap()
        {
            Command::Submit {
                strategy,
                approx_eps_micros,
                ..
            } => {
                assert_eq!(strategy, MapStrategy::Multilevel);
                assert_eq!(approx_eps_micros, 100_000);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("schedule --strategy hierarchical")).is_err());
        assert!(parse(&argv("schedule --approx-eps -0.5")).is_err());
        assert!(parse(&argv("schedule --approx-eps nan")).is_err());
    }

    #[test]
    fn parse_server_subcommands() {
        assert_eq!(
            parse(&argv("serve --addr 127.0.0.1:0 --workers 3")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 3,
                queue_cap: 16,
                cache_cap: 8,
                state_dir: "commsched-state".into(),
                no_persist: false,
                fsync: commsched_service::FsyncPolicy::OnAck,
                max_conns: 10240,
                idle_timeout_secs: 0,
            }
        );
        assert_eq!(
            parse(&argv(
                "serve --state-dir /tmp/cs-state --no-persist --fsync never \
                 --max-conns 64 --idle-timeout 30"
            ))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7477".into(),
                workers: 2,
                queue_cap: 16,
                cache_cap: 8,
                state_dir: "/tmp/cs-state".into(),
                no_persist: true,
                fsync: commsched_service::FsyncPolicy::Never,
                max_conns: 64,
                idle_timeout_secs: 30,
            }
        );
        assert!(parse(&argv("serve --fsync sometimes")).is_err());
        assert_eq!(
            parse(&argv(
                "loadgen --server localhost:7477 --connections 128 --rate 5000 \
                 --batch 64 --duration 2.5 --mode binary --max-in-flight 32 \
                 --out /tmp/lg.json"
            ))
            .unwrap(),
            Command::Loadgen {
                server: "localhost:7477".into(),
                config: commsched_service::loadgen::LoadgenConfig {
                    connections: 128,
                    rate: 5000.0,
                    batch: 64,
                    duration: Duration::from_secs_f64(2.5),
                    mode: commsched_service::loadgen::WireMode::Binary,
                    spec: "NOOP".into(),
                    max_in_flight: 32,
                    deadline_ms: None,
                },
                out: Some("/tmp/lg.json".into()),
            }
        );
        assert!(
            parse(&argv("loadgen --mode binary")).is_err(),
            "needs --server"
        );
        assert_eq!(
            parse(&argv(
                "submit --server localhost:7477 --type sweep --kind paper24 --points 5"
            ))
            .unwrap(),
            Command::Submit {
                server: "localhost:7477".into(),
                kind: SubmitKind::Sweep,
                topology: TopologySpec::Paper24,
                clusters: 4,
                seed: 42,
                points: 5,
                strategy: MapStrategy::Flat,
                approx_eps_micros: 0,
            }
        );
        assert_eq!(
            parse(&argv("status --server localhost:7477 --job 12")).unwrap(),
            Command::Status {
                server: "localhost:7477".into(),
                job: 12,
            }
        );
        // Schedule/sweep pick up --server.
        match parse(&argv("schedule --kind paper24 --server h:1")).unwrap() {
            Command::Schedule { server, .. } => assert_eq!(server, Some("h:1".into())),
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse(&argv("metrics --server localhost:7477")).unwrap(),
            Command::Metrics {
                server: "localhost:7477".into(),
            }
        );
        // Schedule/sweep pick up --trace-out.
        match parse(&argv("sweep --kind paper24 --trace-out /tmp/t.jsonl")).unwrap() {
            Command::Sweep { trace_out, .. } => {
                assert_eq!(trace_out, Some("/tmp/t.jsonl".into()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_cluster_subcommand() {
        assert_eq!(
            parse(&argv(
                "cluster --node-id 1 --members 0=127.0.0.1:7478,1=127.0.0.1:7479 \
                 --state-dir /tmp/cs-node1 --repl async --repl-listen 127.0.0.1:7500 \
                 --workers 3 --vnodes 64"
            ))
            .unwrap(),
            Command::Cluster {
                node_id: 1,
                members: commsched_cluster::parse_members("0=127.0.0.1:7478,1=127.0.0.1:7479")
                    .unwrap(),
                state_dir: "/tmp/cs-node1".into(),
                repl: commsched_cluster::ReplMode::Async,
                repl_listen: Some("127.0.0.1:7500".into()),
                follow: None,
                workers: 3,
                queue_cap: 16,
                cache_cap: 8,
                vnodes: 64,
            }
        );
        // A follower names the primary's replication stream.
        match parse(&argv(
            "cluster --node-id 0 --members 0=127.0.0.1:7478 --follow 127.0.0.1:7500",
        ))
        .unwrap()
        {
            Command::Cluster { repl, follow, .. } => {
                assert_eq!(repl, commsched_cluster::ReplMode::Sync);
                assert_eq!(follow, Some("127.0.0.1:7500".into()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("cluster --members 0=h:1")).is_err(), "node id");
        assert!(parse(&argv("cluster --node-id 0")).is_err(), "members");
        assert!(
            parse(&argv("cluster --node-id 0 --members 0=h:1,0=h:2")).is_err(),
            "duplicate shard"
        );
        assert!(
            parse(&argv("cluster --node-id 0 --members 0=h:1 --repl maybe")).is_err(),
            "repl mode"
        );
    }

    #[test]
    fn server_subcommands_require_flags() {
        assert!(parse(&argv("submit --kind paper24")).is_err());
        assert!(parse(&argv("status --server h:1")).is_err());
        assert!(parse(&argv("submit --server h:1 --type dance")).is_err());
        assert!(parse(&argv("metrics")).is_err());
    }

    #[test]
    fn parse_faults_subcommand() {
        assert_eq!(
            parse(&argv(
                "faults --server h:1 --fp 00c0ffee00c0ffee --kill 0:1"
            ))
            .unwrap(),
            Command::Faults {
                server: "h:1".into(),
                fp: Some("00c0ffee00c0ffee".into()),
                topology: TopologySpec::Random {
                    switches: 16,
                    degree: 3,
                    hosts: 4,
                    seed: 2000
                },
                event: FaultArg::Kill("0:1".into()),
            }
        );
        match parse(&argv(
            "faults --server h:1 --kind paper24 --restore 2:3:1.5",
        ))
        .unwrap()
        {
            Command::Faults {
                fp,
                topology,
                event,
                ..
            } => {
                assert_eq!(fp, None);
                assert_eq!(topology, TopologySpec::Paper24);
                assert_eq!(event, FaultArg::Restore("2:3:1.5".into()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("faults --server h:1 --kind paper24 --down-switch 4")).unwrap() {
            Command::Faults { event, .. } => {
                assert_eq!(event, FaultArg::DownSwitch("4".into()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Exactly one event; --server is mandatory.
        assert!(parse(&argv("faults --server h:1 --kind paper24")).is_err());
        assert!(parse(&argv("faults --server h:1 --kill 0:1 --restore 0:1")).is_err());
        assert!(parse(&argv("faults --kind paper24 --kill 0:1")).is_err());
    }

    #[test]
    fn parse_scenario_subcommand() {
        assert_eq!(
            parse(&argv(
                "scenario --arrivals poisson:50 --duration 30 --seed 7 \
                 --migration threshold:0.1 --baseline --threads 2"
            ))
            .unwrap(),
            Command::Scenario {
                topology: TopologySpec::Paper24,
                arrivals: "poisson:50".into(),
                duration_secs: 30.0,
                seed: 7,
                migration: commsched_scenarios::MigrationPolicy::Threshold(0.1),
                baseline: true,
                server: None,
                threads: 2,
                beta: 3.0,
                dump_trace: None,
            }
        );
        // Topology flags override the paper24 default.
        match parse(&argv("scenario --kind ring --switches 8 --hosts 1")).unwrap() {
            Command::Scenario {
                topology,
                migration,
                baseline,
                ..
            } => {
                assert_eq!(
                    topology,
                    TopologySpec::Ring {
                        switches: 8,
                        hosts: 1
                    }
                );
                assert_eq!(migration, commsched_scenarios::MigrationPolicy::Off);
                assert!(!baseline);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("scenario --migration sometimes")).is_err());
        assert!(parse(&argv("scenario --migration threshold:-1")).is_err());
        assert!(parse(&argv("scenario --duration 0")).is_err());
        assert!(parse(&argv("scenario --beta -2")).is_err());
    }

    #[test]
    fn run_scenario_replays_a_trace_file() {
        let dir = std::env::temp_dir().join(format!("commsched-cli-scn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        std::fs::write(
            &path,
            "{\"t_us\":0,\"base_us\":10000,\"mem\":[64,64],\"edges\":[[0,1,4096]],\"deadline_us\":90000}\n\
             {\"t_us\":5,\"base_us\":10000,\"mem\":[64],\"edges\":[]}\n",
        )
        .unwrap();
        let out = run(&Command::Scenario {
            topology: TopologySpec::Ring {
                switches: 6,
                hosts: 1,
            },
            arrivals: format!("trace:{}", path.display()),
            duration_secs: 1.0,
            seed: 1,
            migration: commsched_scenarios::MigrationPolicy::Threshold(0.1),
            baseline: true,
            server: None,
            threads: 1,
            beta: 3.0,
            dump_trace: None,
        })
        .unwrap();
        assert!(out.contains("slo policy=threshold:0.1"), "{out}");
        assert!(out.contains("baseline (static mapping)"), "{out}");
        assert!(out.contains("compare attainment="), "{out}");
        assert!(out.contains("deadline total=1 met=1"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_loadgen_deadline_flag() {
        match parse(&argv("loadgen --server h:1 --deadline-ms 250")).unwrap() {
            Command::Loadgen { config, .. } => {
                assert_eq!(config.deadline_ms, Some(250));
                assert_eq!(config.effective_spec(), "NOOP deadline-ms=250");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("loadgen --server h:1 --deadline-ms soon")).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("schedule --switches nope")).is_err());
        assert!(parse(&argv("schedule stray")).is_err());
        assert!(parse(&argv("simulate --rate")).is_err());
        assert!(parse(&argv("topology --kind dodecahedron")).is_err());
        assert!(parse(&argv("simulate --congestion tcp-reno")).is_err());
        assert!(parse(&argv("sweep --congestion maybe")).is_err());
    }

    #[test]
    fn parse_congestion_flags() {
        match parse(&argv(
            "simulate --kind ring --congestion ecn-dctcp --misroute --vcs 2 --adaptive",
        ))
        .unwrap()
        {
            Command::Simulate {
                congestion,
                misroute,
                vcs,
                adaptive,
                ..
            } => {
                assert_eq!(congestion, CongestionMode::EcnDctcp);
                assert!(misroute);
                assert_eq!(vcs, 2);
                assert!(adaptive);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Defaults: congestion off, no misrouting — bit-identical baseline.
        match parse(&argv("simulate --kind ring")).unwrap() {
            Command::Simulate {
                congestion,
                misroute,
                ..
            } => {
                assert_eq!(congestion, CongestionMode::Off);
                assert!(!misroute);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("sweep --kind ring --congestion pfc")).unwrap() {
            Command::Sweep { congestion, .. } => assert_eq!(congestion, CongestionMode::Pfc),
            other => panic!("wrong parse: {other:?}"),
        }
        // Congestion regimes only run locally; a daemon sweep rejects them.
        let cmd = parse(&argv("sweep --kind ring --server h:1 --congestion pfc")).unwrap();
        assert!(run(&cmd).unwrap_err().contains("local-only"));
    }

    #[test]
    fn run_topology_lists_links() {
        let out = run(&Command::Topology {
            spec: TopologySpec::Ring {
                switches: 4,
                hosts: 1,
            },
            save: None,
        })
        .unwrap();
        assert!(out.contains("switches: 4"));
        assert!(out.contains("0 -- 1"));
    }

    #[test]
    fn save_and_load_topology_file() {
        let dir = std::env::temp_dir().join("commsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.topo");
        let path_str = path.to_str().unwrap().to_string();
        let out = run(&Command::Topology {
            spec: TopologySpec::Ring {
                switches: 6,
                hosts: 4,
            },
            save: Some(path_str.clone()),
        })
        .unwrap();
        assert!(out.contains("saved to"));
        // Load it back through the file kind.
        let out2 = run(&Command::Topology {
            spec: TopologySpec::File { path: path_str },
            save: None,
        })
        .unwrap();
        assert!(out2.contains("switches: 6"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_kind_requires_input() {
        assert!(parse(&argv("topology --kind file")).is_err());
        let err = run(&Command::Topology {
            spec: TopologySpec::File {
                path: "/nonexistent/definitely-missing.topo".into(),
            },
            save: None,
        })
        .unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn run_schedule_paper24() {
        let out = run(&parse(&argv("schedule --kind paper24")).unwrap()).unwrap();
        assert!(out.contains("Cc ="));
        assert!(out.contains("(0,1,2,3,4,5)"));
    }

    #[test]
    fn run_weighted_schedule() {
        let out = run(&parse(&argv(
            "schedule --kind ring --switches 8 --clusters 2 --weights 5,1",
        ))
        .unwrap())
        .unwrap();
        assert!(out.contains("weighted F_G ="));
    }

    #[test]
    fn run_multilevel_schedule_locally() {
        let out = run(&parse(&argv(
            "schedule --kind ring --switches 8 --clusters 4 --strategy multilevel \
             --max-coarse-n 4 --approx-eps 0.1",
        ))
        .unwrap())
        .unwrap();
        assert!(out.contains("strategy: multilevel"), "missing ml: {out}");
        assert!(out.contains("levels = 1"), "missing levels: {out}");
        assert!(
            out.contains("approx table: eps = 0.1"),
            "missing eps: {out}"
        );
    }

    #[test]
    fn weight_count_mismatch_errors() {
        let err = run(&parse(&argv(
            "schedule --kind ring --switches 8 --clusters 2 --weights 1,2,3",
        ))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("one weight per cluster"));
    }

    #[test]
    fn schedule_through_server_round_trips() {
        // Stand a daemon up in-process, then drive the plain `schedule`
        // subcommand through it with --server.
        let handle = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let out = run(&Command::Schedule {
            topology: TopologySpec::Ring {
                switches: 4,
                hosts: 1,
            },
            clusters: 2,
            seed: 3,
            weights: None,
            server: Some(addr.clone()),
            trace_out: None,
            strategy: MapStrategy::Flat,
            max_coarse_n: 256,
            approx_eps_micros: 0,
        })
        .unwrap();
        assert!(out.contains("partition "), "missing partition in: {out}");
        assert!(out.contains("cc "), "missing cc in: {out}");
        // Weighted jobs are a local-only feature.
        let err = run(&Command::Schedule {
            topology: TopologySpec::Paper24,
            clusters: 4,
            seed: 1,
            weights: Some(vec![1.0, 1.0, 1.0, 1.0]),
            server: Some(addr.clone()),
            trace_out: None,
            strategy: MapStrategy::Flat,
            max_coarse_n: 256,
            approx_eps_micros: 0,
        })
        .unwrap_err();
        assert!(err.contains("--weights"));
        // The metrics subcommand round-trips the daemon's Prometheus dump
        // (the schedule job above ran, so job counters are non-zero).
        let metrics = run(&Command::Metrics {
            server: addr.clone(),
        })
        .unwrap();
        assert!(
            metrics.contains("service_jobs_completed_total 1"),
            "metrics missing completed counter: {metrics}"
        );
        assert!(metrics.contains("# TYPE service_job_run_ms histogram"));
        let mut client = Client::connect(addr.as_str()).unwrap();
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn faults_through_server_round_trips() {
        // Inject a kill through the `faults` subcommand against a builtin
        // topology spec, then verify the stale spec is rejected.
        let handle = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let topology = TopologySpec::Ring {
            switches: 6,
            hosts: 2,
        };
        let out = run(&Command::Faults {
            server: addr.clone(),
            fp: None,
            topology: topology.clone(),
            event: FaultArg::Kill("0:1".into()),
        })
        .unwrap();
        assert!(out.contains("event link-down 0:1"), "report: {out}");
        assert!(out.contains("epoch 1"), "report: {out}");
        assert!(out.contains("connected true"), "report: {out}");
        let new_fp = out
            .lines()
            .find_map(|l| l.strip_prefix("topology "))
            .expect("successor fingerprint in report")
            .to_string();
        // The builtin spec now names a superseded epoch: a second fault
        // through it is the typed stale-epoch error, while the successor
        // fingerprint accepts one.
        let err = run(&Command::Faults {
            server: addr.clone(),
            fp: None,
            topology,
            event: FaultArg::Kill("2:3".into()),
        })
        .unwrap_err();
        assert!(err.contains("stale-epoch"), "error: {err}");
        let out = run(&Command::Faults {
            server: addr.clone(),
            fp: Some(new_fp),
            topology: TopologySpec::Paper24,
            event: FaultArg::Restore("0:1".into()),
        })
        .unwrap();
        assert!(out.contains("event link-up 0:1:1"), "report: {out}");
        let mut client = Client::connect(addr.as_str()).unwrap();
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn invalid_ring_is_a_clean_local_error() {
        // Satellite regression: shape validation surfaces as a Result all
        // the way through the local CLI path, not a panic.
        let err = run(&parse(&argv("topology --kind ring --switches 2")).unwrap()).unwrap_err();
        assert!(err.contains("ring needs at least 3"), "error: {err}");
    }

    #[test]
    fn trace_out_writes_jsonl() {
        let dir = std::env::temp_dir().join("commsched-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let out = run(&Command::Schedule {
            topology: TopologySpec::Ring {
                switches: 6,
                hosts: 2,
            },
            clusters: 2,
            seed: 5,
            weights: None,
            server: None,
            trace_out: Some(path_str.clone()),
            strategy: MapStrategy::Flat,
            max_coarse_n: 256,
            approx_eps_micros: 0,
        })
        .unwrap();
        assert!(out.contains("trace: "), "missing trace line in: {out}");
        let text = std::fs::read_to_string(&path).unwrap();
        // Local runs hit the distance builder and tabu search, both of
        // which emit spans once tracing is armed.
        assert!(
            text.contains("\"name\":\"distance.build\""),
            "no distance span in: {text}"
        );
        assert!(text.contains("\"name\":\"tabu.search\""));
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad: {line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn weighted_schedule_unweighted_matches_plain_fg() {
        // Uniform weights reduce the weighted objective to F_G, so the
        // weighted CLI path must report the same number the plain path
        // would.
        let out = run(&parse(&argv(
            "schedule --kind ring --switches 8 --clusters 2 --weights 1,1",
        ))
        .unwrap())
        .unwrap();
        let weighted: f64 = out
            .lines()
            .find_map(|l| l.strip_prefix("weighted F_G = "))
            .unwrap()
            .parse()
            .unwrap();
        let plain =
            run(&parse(&argv("schedule --kind ring --switches 8 --clusters 2")).unwrap()).unwrap();
        let fg: f64 = plain
            .lines()
            .find_map(|l| l.strip_prefix("F_G = "))
            .map(|rest| rest.split_whitespace().next().unwrap())
            .unwrap()
            .parse()
            .unwrap();
        assert!((weighted - fg).abs() < 1e-9, "{weighted} != {fg}");
    }
}
