#![warn(missing_docs)]

//! # commsched — communication-aware task scheduling for heterogeneous systems
//!
//! A from-scratch Rust reproduction of J. M. Orduña, V. Arnau, A. Ruiz,
//! R. Valero and J. Duato, *"On the Design of Communication-Aware Task
//! Scheduling Strategies for Heterogeneous Systems"* (ICPP 2000).
//!
//! The paper proposes (a) a criterion — the **clustering coefficient**
//! `Cc = D_G / F_G` built on the *table of equivalent distances* — that
//! measures how well an allocation of network resources matches the
//! communication requirements of a set of parallel applications, and (b) a
//! **tabu-search scheduling technique** that minimizes `F_G` to produce a
//! near-optimal mapping of processes to processors on arbitrary (regular or
//! irregular) switch-based networks.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Implements |
//! |---|---|---|
//! | [`topology`] | `commsched-topology` | switch graphs, random irregular and designed topologies (§5.1) |
//! | [`routing`] | `commsched-routing` | up*/down* and shortest-path routing (§2) |
//! | [`distance`] | `commsched-distance` | table of equivalent distances — resistive model (§3) |
//! | [`core`] | `commsched-core` | partitions, quality functions `F_G`, `D_G`, `Cc` (§4.1) |
//! | [`search`] | `commsched-search` | tabu search + comparison heuristics (§4.2) |
//! | [`dynamics`] | `commsched-dynamics` | fault injection, incremental table repair, warm remapping |
//! | [`netsim`] | `commsched-netsim` | flit-level wormhole simulator (§5) |
//! | [`stats`] | `commsched-stats` | correlation/statistics for the evaluation (§5.2) |
//! | [`service`] | `commsched-service` | scheduling daemon: topology registry, distance-table cache, job queue |
//!
//! ## Quickstart
//!
//! ```
//! use commsched::{Scheduler, RoutingKind};
//! use commsched::core::Workload;
//! use commsched::topology::designed;
//!
//! // The paper's specially designed 24-switch network: 4 rings of 6.
//! let topo = designed::paper_24_switch();
//! let scheduler = Scheduler::new(topo, RoutingKind::UpDown { root: 0 }).unwrap();
//! // Four applications of 24 processes each (one per workstation).
//! let workload = Workload::balanced(scheduler.topology(), 4).unwrap();
//! let outcome = scheduler.schedule(&workload, 42).unwrap();
//! // The scheduler recovers the four physical rings (Figure 4).
//! use commsched::core::Partition;
//! use commsched::topology::designed::ring_of_rings_clusters;
//! let truth = Partition::from_clusters(&ring_of_rings_clusters(4, 6)).unwrap();
//! assert!(outcome.partition.same_grouping(&truth));
//! ```

pub mod cli;
pub mod dynamic;
pub mod estimate;
pub mod scheduler;

pub use dynamic::{AppId, DynamicError, DynamicScheduler, Placement};
pub use scheduler::{RoutingKind, ScheduleError, ScheduleOutcome, Scheduler, SchedulerOptions};

pub use commsched_core as core;
pub use commsched_distance as distance;
pub use commsched_dynamics as dynamics;
pub use commsched_netsim as netsim;
pub use commsched_routing as routing;
pub use commsched_search as search;
pub use commsched_service as service;
pub use commsched_stats as stats;
pub use commsched_topology as topology;
