//! Dynamic (online) scheduling: applications arrive and depart.
//!
//! The paper's §6 leaves "the integration of the proposed scheduling
//! technique with process scheduling" to future work. This module provides
//! that integration layer: a [`DynamicScheduler`] keeps track of which
//! switches are serving which application and places each *arriving*
//! application on the free switches only — greedy seeding by cheapest
//! attachment under the equivalent-distance table, followed by a
//! swap-with-free-switch local search on the application's intracluster
//! cost (Eq. 1). Departing applications release their switches.
//!
//! Placements of already-running applications are never disturbed (no
//! migration), which is the operating constraint a real NOW scheduler
//! faces.

use crate::scheduler::Scheduler;
use commsched_core::cluster_similarity;
use commsched_topology::SwitchId;
use std::collections::HashMap;

/// Identifier of an admitted application.
pub type AppId = usize;

/// Errors from the dynamic scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicError {
    /// The application's process count does not fill an integer number of
    /// switches.
    NotSwitchAligned {
        /// Requested processes.
        processes: usize,
        /// Workstations per switch.
        hosts_per_switch: usize,
    },
    /// Not enough free switches.
    InsufficientCapacity {
        /// Switches needed.
        needed: usize,
        /// Switches free.
        free: usize,
    },
    /// Unknown application id.
    UnknownApp(AppId),
    /// Zero-process application.
    EmptyApp,
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::NotSwitchAligned {
                processes,
                hosts_per_switch,
            } => write!(
                f,
                "{processes} processes is not a multiple of {hosts_per_switch} hosts/switch"
            ),
            DynamicError::InsufficientCapacity { needed, free } => {
                write!(f, "need {needed} switches, only {free} free")
            }
            DynamicError::UnknownApp(id) => write!(f, "unknown application {id}"),
            DynamicError::EmptyApp => write!(f, "application has no processes"),
        }
    }
}

impl std::error::Error for DynamicError {}

/// One admitted application's placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Application id.
    pub id: AppId,
    /// Human-readable name.
    pub name: String,
    /// Switches serving the application (sorted).
    pub switches: Vec<SwitchId>,
}

/// Online scheduler over a fixed network.
pub struct DynamicScheduler {
    scheduler: Scheduler,
    /// Which application occupies each switch.
    occupancy: Vec<Option<AppId>>,
    apps: HashMap<AppId, Placement>,
    next_id: AppId,
}

impl DynamicScheduler {
    /// Wrap a static scheduler (its distance table drives the placement).
    pub fn new(scheduler: Scheduler) -> Self {
        let n = scheduler.topology().num_switches();
        Self {
            scheduler,
            occupancy: vec![None; n],
            apps: HashMap::new(),
            next_id: 0,
        }
    }

    /// The underlying static scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Currently free switches (sorted).
    pub fn free_switches(&self) -> Vec<SwitchId> {
        self.occupancy
            .iter()
            .enumerate()
            .filter_map(|(s, o)| o.is_none().then_some(s))
            .collect()
    }

    /// All current placements, sorted by application id.
    pub fn placements(&self) -> Vec<&Placement> {
        let mut v: Vec<&Placement> = self.apps.values().collect();
        v.sort_by_key(|p| p.id);
        v
    }

    /// Fraction of switches in use.
    pub fn utilization(&self) -> f64 {
        let used = self.occupancy.iter().filter(|o| o.is_some()).count();
        used as f64 / self.occupancy.len() as f64
    }

    /// Intracluster cost (Eq. 1) of an admitted application's placement.
    ///
    /// # Errors
    /// [`DynamicError::UnknownApp`] for unknown ids.
    pub fn app_cost(&self, id: AppId) -> Result<f64, DynamicError> {
        let p = self.apps.get(&id).ok_or(DynamicError::UnknownApp(id))?;
        Ok(cluster_similarity(&p.switches, self.scheduler.table()))
    }

    /// Admit an application of `processes` processes (one per
    /// workstation): place it on free switches minimizing its intracluster
    /// cost, without disturbing running applications.
    ///
    /// # Errors
    /// See [`DynamicError`].
    pub fn admit(
        &mut self,
        name: impl Into<String>,
        processes: usize,
    ) -> Result<Placement, DynamicError> {
        if processes == 0 {
            return Err(DynamicError::EmptyApp);
        }
        let hps = self.scheduler.topology().hosts_per_switch();
        if hps == 0 || !processes.is_multiple_of(hps) {
            return Err(DynamicError::NotSwitchAligned {
                processes,
                hosts_per_switch: hps,
            });
        }
        let needed = processes / hps;
        let free = self.free_switches();
        if free.len() < needed {
            return Err(DynamicError::InsufficientCapacity {
                needed,
                free: free.len(),
            });
        }

        let switches = self.place_on_free(&free, needed);
        let id = self.next_id;
        self.next_id += 1;
        for &s in &switches {
            self.occupancy[s] = Some(id);
        }
        let placement = Placement {
            id,
            name: name.into(),
            switches,
        };
        self.apps.insert(id, placement.clone());
        Ok(placement)
    }

    /// Release an application's switches.
    ///
    /// # Errors
    /// [`DynamicError::UnknownApp`] for unknown ids.
    pub fn release(&mut self, id: AppId) -> Result<(), DynamicError> {
        let p = self.apps.remove(&id).ok_or(DynamicError::UnknownApp(id))?;
        for s in p.switches {
            debug_assert_eq!(self.occupancy[s], Some(id));
            self.occupancy[s] = None;
        }
        Ok(())
    }

    /// Greedy seed + local improvement over the free switch set.
    fn place_on_free(&self, free: &[SwitchId], needed: usize) -> Vec<SwitchId> {
        let table = self.scheduler.table();
        if needed == free.len() {
            return free.to_vec();
        }
        // Greedy: start from the cheapest free pair (or single switch),
        // then repeatedly add the free switch with the cheapest attachment.
        let mut chosen: Vec<SwitchId> = Vec::with_capacity(needed);
        if needed == 1 {
            // Any switch works; pick the one closest to the rest of the
            // free pool being irrelevant, take the lowest id for
            // determinism.
            chosen.push(free[0]);
        } else {
            let (mut best_pair, mut best_cost) = ((free[0], free[1]), f64::INFINITY);
            for (i, &a) in free.iter().enumerate() {
                for &b in &free[i + 1..] {
                    let c = table.get_sq(a, b);
                    if c < best_cost {
                        best_cost = c;
                        best_pair = (a, b);
                    }
                }
            }
            chosen.push(best_pair.0);
            chosen.push(best_pair.1);
        }
        while chosen.len() < needed {
            let (next, _) = free
                .iter()
                .filter(|s| !chosen.contains(s))
                .map(|&s| {
                    let attach: f64 = chosen.iter().map(|&c| table.get_sq(s, c)).sum();
                    (s, attach)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("enough free switches checked");
            chosen.push(next);
        }
        // Local improvement: swap a member with a free non-member while it
        // lowers the intracluster cost.
        let mut improved = true;
        while improved {
            improved = false;
            let current = cluster_similarity(&chosen, table);
            'outer: for i in 0..chosen.len() {
                for &candidate in free.iter().filter(|s| !chosen.contains(s)) {
                    let mut trial = chosen.clone();
                    trial[i] = candidate;
                    if cluster_similarity(&trial, table) < current - 1e-12 {
                        chosen = trial;
                        improved = true;
                        break 'outer;
                    }
                }
            }
        }
        chosen.sort_unstable();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::RoutingKind;
    use commsched_topology::designed;

    fn rings_scheduler() -> DynamicScheduler {
        let topo = designed::paper_24_switch();
        DynamicScheduler::new(Scheduler::new(topo, RoutingKind::UpDown { root: 0 }).unwrap())
    }

    #[test]
    fn sequential_admits_fill_the_machine_with_tight_clusters() {
        // Note: the greedy first app may deviate from a physical ring —
        // under up*/down* the inter-ring bridge makes a neighbouring
        // ring's switch electrically closer than the own ring's far side.
        // What must hold: every app gets a placement at most as costly as
        // a physical ring, placements are disjoint, and the machine fills.
        let mut dyn_sched = rings_scheduler();
        let ring_cost =
            cluster_similarity(&(0..6).collect::<Vec<_>>(), dyn_sched.scheduler().table());
        let mut used = std::collections::HashSet::new();
        let mut total = 0.0;
        for i in 0..4 {
            let p = dyn_sched.admit(format!("app{i}"), 24).unwrap();
            assert_eq!(p.switches.len(), 6);
            for &s in &p.switches {
                assert!(used.insert(s), "switch {s} double-booked");
            }
            let cost = dyn_sched.app_cost(p.id).unwrap();
            total += cost;
            // The first app sees the whole machine and must be at least
            // ring-quality; later apps inherit fragmented leftovers (the
            // price of no-migration online scheduling).
            if i == 0 {
                assert!(
                    cost <= ring_cost + 1e-9,
                    "first app cost {cost} > ring {ring_cost}"
                );
            }
        }
        assert_eq!(dyn_sched.utilization(), 1.0);
        assert!(dyn_sched.free_switches().is_empty());
        // Aggregate fragmentation overhead stays bounded: total intra
        // cost within 3x of the static optimum (4 physical rings).
        assert!(
            total <= 3.0 * 4.0 * ring_cost,
            "total {total} vs static optimum {}",
            4.0 * ring_cost
        );
    }

    #[test]
    fn capacity_enforced() {
        let mut dyn_sched = rings_scheduler();
        for i in 0..4 {
            dyn_sched.admit(format!("app{i}"), 24).unwrap();
        }
        assert_eq!(
            dyn_sched.admit("overflow", 24).unwrap_err(),
            DynamicError::InsufficientCapacity { needed: 6, free: 0 }
        );
    }

    #[test]
    fn release_frees_switches_for_reuse() {
        let mut dyn_sched = rings_scheduler();
        let ids: Vec<AppId> = (0..4)
            .map(|i| dyn_sched.admit(format!("app{i}"), 24).unwrap().id)
            .collect();
        let victim = ids[2];
        let old = dyn_sched.apps[&victim].switches.clone();
        dyn_sched.release(victim).unwrap();
        assert_eq!(dyn_sched.free_switches(), old);
        let p = dyn_sched.admit("newcomer", 24).unwrap();
        assert_eq!(p.switches, old, "newcomer reuses the freed ring");
        assert!(dyn_sched.release(victim).is_err(), "double release");
    }

    #[test]
    fn alignment_and_empty_rejected() {
        let mut dyn_sched = rings_scheduler();
        assert_eq!(
            dyn_sched.admit("odd", 10).unwrap_err(),
            DynamicError::NotSwitchAligned {
                processes: 10,
                hosts_per_switch: 4
            }
        );
        assert_eq!(
            dyn_sched.admit("none", 0).unwrap_err(),
            DynamicError::EmptyApp
        );
    }

    #[test]
    fn app_cost_reflects_placement_quality() {
        let mut dyn_sched = rings_scheduler();
        let a = dyn_sched.admit("a", 24).unwrap();
        let cost = dyn_sched.app_cost(a.id).unwrap();
        // With the whole machine free, greedy + local search must match or
        // beat the physical-ring cost (it may exploit the bridge links).
        let truth_cost =
            cluster_similarity(&(0..6).collect::<Vec<_>>(), dyn_sched.scheduler().table());
        assert!(cost <= truth_cost + 1e-9, "cost {cost} > ring {truth_cost}");
        assert!(dyn_sched.app_cost(999).is_err());
    }

    #[test]
    fn single_switch_app() {
        let mut dyn_sched = rings_scheduler();
        let p = dyn_sched.admit("tiny", 4).unwrap();
        assert_eq!(p.switches.len(), 1);
        assert!((dyn_sched.app_cost(p.id).unwrap() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn randomized_trace_keeps_invariants() {
        // A random admit/release trace: occupancy bookkeeping must stay
        // consistent at every step.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut dyn_sched = rings_scheduler();
        let mut rng = StdRng::seed_from_u64(77);
        let mut live: Vec<AppId> = Vec::new();
        for step in 0..200 {
            if !live.is_empty() && rng.gen_bool(0.4) {
                let idx = rng.gen_range(0..live.len());
                let id = live.swap_remove(idx);
                dyn_sched.release(id).unwrap();
            } else {
                let switches = rng.gen_range(1..=6);
                match dyn_sched.admit(format!("app{step}"), switches * 4) {
                    Ok(p) => {
                        assert_eq!(p.switches.len(), switches);
                        live.push(p.id);
                    }
                    Err(DynamicError::InsufficientCapacity { needed, free }) => {
                        assert!(needed > free);
                    }
                    Err(other) => panic!("unexpected error {other}"),
                }
            }
            // Invariants: occupancy and placements agree exactly.
            let placed: usize = dyn_sched
                .placements()
                .iter()
                .map(|p| p.switches.len())
                .sum();
            let used = 24 - dyn_sched.free_switches().len();
            assert_eq!(placed, used);
            assert_eq!(dyn_sched.placements().len(), live.len());
            let util = dyn_sched.utilization();
            assert!((util - used as f64 / 24.0).abs() < 1e-12);
            // No switch is double-booked.
            let mut seen = std::collections::HashSet::new();
            for p in dyn_sched.placements() {
                for &s in &p.switches {
                    assert!(seen.insert(s), "switch {s} double-booked at step {step}");
                }
            }
        }
    }

    #[test]
    fn fragmentation_still_places_connected_groups() {
        // Occupy half of each of two rings, then ask for a 3-switch app:
        // it must come from within one ring, not straddle rings.
        let topo = designed::paper_24_switch();
        let mut dyn_sched =
            DynamicScheduler::new(Scheduler::new(topo, RoutingKind::UpDown { root: 0 }).unwrap());
        // Two 12-process apps: greedy will take 3-switch chunks.
        let a = dyn_sched.admit("a", 12).unwrap();
        let b = dyn_sched.admit("b", 12).unwrap();
        assert_eq!(a.switches.len(), 3);
        assert_eq!(b.switches.len(), 3);
        let ring_of = |sw: &[SwitchId]| sw[0] / 6;
        assert!(a.switches.iter().all(|&s| s / 6 == ring_of(&a.switches)));
        assert!(b.switches.iter().all(|&s| s / 6 == ring_of(&b.switches)));
    }
}
