#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs against the vendored in-tree dependency shims, so no
# network (and no crates.io registry) is needed.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> perfbase --smoke (perf sanity: sparse == dense, tabu determinism, dynamics repair >= 3x rebuild, net front-end sweep, multilevel scale gate, scenario warm-remap >= 3x cold + thread-count bit-identity, congestion-regime OP-vs-random sign + off-mode purity)"
./target/release/perfbase --smoke --out /tmp/perfbase_smoke.json --out-dynamics /tmp/perfbase_smoke_pr4.json --out-service /tmp/perfbase_smoke_pr5.json --out-net /tmp/perfbase_smoke_pr6.json --out-scale /tmp/perfbase_smoke_pr7.json --out-scenarios /tmp/perfbase_smoke_pr9.json --out-netsim /tmp/perfbase_smoke_pr10.json

echo "==> perfbase --smoke --only-cluster (shard scaling gates: >= 1.7x at 2, >= 3x at 4; sync replication row)"
./target/release/perfbase --smoke --only-cluster --out-cluster /tmp/perfbase_smoke_pr8.json

echo "==> multilevel smoke (N=1024 coarsen->map->refine on an approximate table under a wall budget)"
ML_START=$(date +%s)
./target/release/commsched schedule --kind random --switches 1024 --hosts 4 --degree 3 \
    --clusters 4 --seed 42 --strategy multilevel --approx-eps 0.05 >/tmp/ml_smoke.out \
    || { echo "multilevel smoke: schedule failed"; cat /tmp/ml_smoke.out; exit 1; }
ML_ELAPSED=$(( $(date +%s) - ML_START ))
grep -q '^strategy: multilevel' /tmp/ml_smoke.out \
    || { echo "multilevel smoke: no multilevel telemetry line"; cat /tmp/ml_smoke.out; exit 1; }
grep -q '^approx table: eps = 0.05' /tmp/ml_smoke.out \
    || { echo "multilevel smoke: no approx-table report line"; cat /tmp/ml_smoke.out; exit 1; }
[ "$ML_ELAPSED" -le 120 ] \
    || { echo "multilevel smoke: N=1024 took ${ML_ELAPSED}s (> 120s budget)"; exit 1; }
echo "multilevel smoke: ok (${ML_ELAPSED}s)"

echo "==> congestion sweep smoke (S1..S9 sweep under ECN+AIMD with adaptive misrouting)"
./target/release/commsched sweep --kind ring --switches 8 --hosts 2 --clusters 2 \
    --congestion ecn-aimd --vcs 2 --misroute >/tmp/congestion_sweep_smoke.out \
    || { echo "congestion sweep smoke: run failed"; cat /tmp/congestion_sweep_smoke.out; exit 1; }
grep -q '^regime: ecn-aimd+misroute' /tmp/congestion_sweep_smoke.out \
    || { echo "congestion sweep smoke: no regime line"; cat /tmp/congestion_sweep_smoke.out; exit 1; }
grep -q '^S1' /tmp/congestion_sweep_smoke.out \
    || { echo "congestion sweep smoke: no sweep points"; cat /tmp/congestion_sweep_smoke.out; exit 1; }
grep -q 'NaN' /tmp/congestion_sweep_smoke.out \
    && { echo "congestion sweep smoke: NaN leaked into output"; cat /tmp/congestion_sweep_smoke.out; exit 1; }
grep -q 'DEADLOCK' /tmp/congestion_sweep_smoke.out \
    && { echo "congestion sweep smoke: deadlock reported"; cat /tmp/congestion_sweep_smoke.out; exit 1; }
echo "congestion sweep smoke: ok"

echo "==> recovery smoke (serve -> submit -> SIGKILL -> restart -> recovered job visible)"
SMOKE_DIR=$(mktemp -d /tmp/commsched-recovery-smoke.XXXXXX)
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/commsched serve --addr 127.0.0.1:0 --workers 1 \
    --state-dir "$SMOKE_DIR/state" >"$SMOKE_DIR/serve1.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^commsched-service listening on //p' "$SMOKE_DIR/serve1.log")
    if [ -n "$ADDR" ] && ./target/release/commsched metrics --server "$ADDR" >/dev/null 2>&1; then
        break
    fi
    ADDR=""
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "recovery smoke: first server never came up"; cat "$SMOKE_DIR/serve1.log"; exit 1; }
./target/release/commsched submit --server "$ADDR" --kind ring --switches 4 --hosts 1 --clusters 2 | grep -q '^job ' \
    || { echo "recovery smoke: submit failed"; exit 1; }
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
./target/release/commsched serve --addr 127.0.0.1:0 --workers 1 \
    --state-dir "$SMOKE_DIR/state" >"$SMOKE_DIR/serve2.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^commsched-service listening on //p' "$SMOKE_DIR/serve2.log")
    if [ -n "$ADDR" ] && ./target/release/commsched metrics --server "$ADDR" >/dev/null 2>&1; then
        break
    fi
    ADDR=""
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "recovery smoke: restarted server never came up"; cat "$SMOKE_DIR/serve2.log"; exit 1; }
grep -q '^recovered from ' "$SMOKE_DIR/serve2.log" \
    || { echo "recovery smoke: no recovery line"; cat "$SMOKE_DIR/serve2.log"; exit 1; }
./target/release/commsched status --server "$ADDR" --job 1 | grep -Eq 'queued|running|done' \
    || { echo "recovery smoke: job 1 not recovered"; exit 1; }
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
echo "recovery smoke: ok"

echo "==> loadgen smoke (serve -> closed-loop binary batch load -> clean report)"
./target/release/commsched serve --addr 127.0.0.1:0 --workers 2 --no-persist \
    --queue-cap 100000 >"$SMOKE_DIR/serve3.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^commsched-service listening on //p' "$SMOKE_DIR/serve3.log")
    if [ -n "$ADDR" ] && ./target/release/commsched metrics --server "$ADDR" >/dev/null 2>&1; then
        break
    fi
    ADDR=""
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "loadgen smoke: server never came up"; cat "$SMOKE_DIR/serve3.log"; exit 1; }
./target/release/commsched loadgen --server "$ADDR" --connections 32 --rate 0 \
    --max-in-flight 4 --batch 16 --mode binary --duration 1 \
    --out "$SMOKE_DIR/loadgen.json" >/dev/null \
    || { echo "loadgen smoke: run failed"; exit 1; }
grep -q '"errors":0,' "$SMOKE_DIR/loadgen.json" \
    || { echo "loadgen smoke: errors in report"; cat "$SMOKE_DIR/loadgen.json"; exit 1; }
grep -q '"in_flight_lost":0,' "$SMOKE_DIR/loadgen.json" \
    || { echo "loadgen smoke: lost in-flight requests"; cat "$SMOKE_DIR/loadgen.json"; exit 1; }
grep -q '"jobs_acked":0,' "$SMOKE_DIR/loadgen.json" \
    && { echo "loadgen smoke: nothing acknowledged"; cat "$SMOKE_DIR/loadgen.json"; exit 1; }
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
echo "loadgen smoke: ok"

echo "==> scenario smoke (20s Poisson closed loop vs live daemon: zero misses at low rate, mirror acked)"
./target/release/commsched serve --addr 127.0.0.1:0 --workers 2 --no-persist \
    --queue-cap 100000 >"$SMOKE_DIR/serve4.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^commsched-service listening on //p' "$SMOKE_DIR/serve4.log")
    if [ -n "$ADDR" ] && ./target/release/commsched metrics --server "$ADDR" >/dev/null 2>&1; then
        break
    fi
    ADDR=""
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "scenario smoke: server never came up"; cat "$SMOKE_DIR/serve4.log"; exit 1; }
./target/release/commsched scenario --arrivals poisson:20 --duration 20 --seed 7 \
    --migration threshold:0.1 --server "$ADDR" >"$SMOKE_DIR/scenario.out" \
    || { echo "scenario smoke: run failed"; cat "$SMOKE_DIR/scenario.out"; exit 1; }
grep -q '^slo policy=threshold:0.1 ' "$SMOKE_DIR/scenario.out" \
    || { echo "scenario smoke: no SLO report"; cat "$SMOKE_DIR/scenario.out"; exit 1; }
grep -q '^slo deadline .* miss=0 ' "$SMOKE_DIR/scenario.out" \
    || { echo "scenario smoke: deadline misses at low rate"; cat "$SMOKE_DIR/scenario.out"; exit 1; }
grep -q '^daemon mirror: ' "$SMOKE_DIR/scenario.out" \
    || { echo "scenario smoke: no daemon mirror line"; cat "$SMOKE_DIR/scenario.out"; exit 1; }
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
echo "scenario smoke: ok"

echo "==> cluster failover smoke (primary + standby -> submit -> SIGKILL primary -> promoted node serves)"
# Reserve a concrete port for the member address: the standby re-binds
# the same address after promotion, so it cannot be kernel-assigned.
./target/release/commsched serve --addr 127.0.0.1:0 --workers 1 --no-persist \
    >"$SMOKE_DIR/reserve.log" 2>&1 &
RESERVE_PID=$!
CLUSTER_ADDR=""
for _ in $(seq 1 100); do
    CLUSTER_ADDR=$(sed -n 's/^commsched-service listening on //p' "$SMOKE_DIR/reserve.log")
    [ -n "$CLUSTER_ADDR" ] && break
    sleep 0.1
done
kill -9 "$RESERVE_PID" 2>/dev/null || true
wait "$RESERVE_PID" 2>/dev/null || true
[ -n "$CLUSTER_ADDR" ] || { echo "cluster smoke: could not reserve a port"; exit 1; }
./target/release/commsched cluster --node-id 0 --members "0=$CLUSTER_ADDR" \
    --state-dir "$SMOKE_DIR/cluster-primary" --repl sync --repl-listen 127.0.0.1:0 \
    >"$SMOKE_DIR/cluster1.log" 2>&1 &
PRIMARY_PID=$!
REPL_ADDR=""
for _ in $(seq 1 100); do
    REPL_ADDR=$(sed -n 's/^replication listening on //p' "$SMOKE_DIR/cluster1.log")
    if [ -n "$REPL_ADDR" ] && grep -q 'primary listening on ' "$SMOKE_DIR/cluster1.log" \
        && ./target/release/commsched metrics --server "$CLUSTER_ADDR" >/dev/null 2>&1; then
        break
    fi
    REPL_ADDR=""
    sleep 0.1
done
[ -n "$REPL_ADDR" ] || { echo "cluster smoke: primary never came up"; cat "$SMOKE_DIR/cluster1.log"; exit 1; }
./target/release/commsched cluster --node-id 0 --members "0=$CLUSTER_ADDR" \
    --state-dir "$SMOKE_DIR/cluster-standby" --repl sync --follow "$REPL_ADDR" \
    >"$SMOKE_DIR/cluster2.log" 2>&1 &
STANDBY_PID=$!
for _ in $(seq 1 100); do
    grep -q ' following ' "$SMOKE_DIR/cluster2.log" && break
    sleep 0.1
done
grep -q ' following ' "$SMOKE_DIR/cluster2.log" \
    || { echo "cluster smoke: standby never started following"; cat "$SMOKE_DIR/cluster2.log"; exit 1; }
for _ in 1 2 3; do
    ./target/release/commsched submit --server "$CLUSTER_ADDR" --kind ring --switches 4 --hosts 1 --clusters 2 | grep -q '^job ' \
        || { echo "cluster smoke: submit to primary failed"; exit 1; }
done
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PROMOTED=""
for _ in $(seq 1 300); do
    if grep -q 'promoted, listening on ' "$SMOKE_DIR/cluster2.log" \
        && ./target/release/commsched metrics --server "$CLUSTER_ADDR" >/dev/null 2>&1; then
        PROMOTED=yes
        break
    fi
    sleep 0.1
done
[ -n "$PROMOTED" ] || { echo "cluster smoke: standby never promoted"; cat "$SMOKE_DIR/cluster2.log"; exit 1; }
# Acked-means-replicated: every job submitted to the dead primary must
# be visible on the promoted node.
for JOB in 1 2 3; do
    ./target/release/commsched status --server "$CLUSTER_ADDR" --job "$JOB" | grep -Eq 'queued|running|done' \
        || { echo "cluster smoke: job $JOB lost in failover"; exit 1; }
done
kill -9 "$STANDBY_PID" 2>/dev/null || true
wait "$STANDBY_PID" 2>/dev/null || true
echo "cluster failover smoke: ok"

echo "==> ci.sh: all green"
