#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs against the vendored in-tree dependency shims, so no
# network (and no crates.io registry) is needed.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> perfbase --smoke (perf sanity: sparse == dense, tabu determinism, dynamics repair >= 3x rebuild)"
./target/release/perfbase --smoke --out /tmp/perfbase_smoke.json --out-dynamics /tmp/perfbase_smoke_pr4.json

echo "==> ci.sh: all green"
