//! Heterogeneous computation scheduling — the other half of the "ideal
//! scheduler".
//!
//! §1 of the paper: an ideal strategy would pick a computation-aware or a
//! communication-aware technique depending on which resource is the
//! bottleneck. This example exercises the computation-aware baselines the
//! paper cites (OLB, UDA, Min-min, Max-min) on a synthetic heterogeneous
//! ETC matrix, and then shows the combined objective that blends makespan
//! with the communication criterion.
//!
//! Run: `cargo run --release --example hetero_makespan`

use commsched::core::Workload;
use commsched::search::compute::{combined_cost, max_min, min_min, olb, uda, EtcMatrix};
use commsched::topology::designed;
use commsched::{RoutingKind, Scheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 32 independent tasks on 8 heterogeneous machines: consistent-style
    // ETC (machines have speed factors, tasks have sizes) plus noise.
    let tasks = 32;
    let machines = 8;
    let mut rng = StdRng::seed_from_u64(11);
    let speed: Vec<f64> = (0..machines).map(|_| rng.gen_range(0.5..2.5)).collect();
    let size: Vec<f64> = (0..tasks).map(|_| rng.gen_range(10.0..100.0)).collect();
    let data: Vec<f64> = (0..tasks)
        .flat_map(|t| {
            let size = size[t];
            let noise: Vec<f64> = (0..machines)
                .map(|m| size / speed[m] * rng.gen_range(0.85..1.15))
                .collect();
            noise
        })
        .collect();
    let etc = EtcMatrix::from_vec(tasks, machines, data);

    println!("computation-aware heuristics (32 tasks, 8 machines):");
    println!("  heuristic  makespan");
    for (name, schedule) in [
        ("OLB", olb(&etc)),
        ("UDA", uda(&etc)),
        ("Min-min", min_min(&etc)),
        ("Max-min", max_min(&etc)),
    ] {
        println!("  {name:<9} {:>9.1}", schedule.makespan());
    }

    // Combined view: a communication-heavy workload on the campus network,
    // scoring placements by alpha-blended makespan + F_G.
    let topology = designed::paper_24_switch();
    let scheduler = Scheduler::new(topology, RoutingKind::UpDown { root: 0 })?;
    let workload = Workload::balanced(scheduler.topology(), 4)?;
    let comm = scheduler.schedule(&workload, 1)?;
    let rand_place = scheduler.random_mapping(&workload, 2)?;

    let reference = min_min(&etc).makespan();
    println!("\ncombined objective alpha*makespan + (1-alpha)*F_G:");
    println!("  alpha  comm-aware  oblivious");
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        // Both placements run the same computation schedule here; the
        // communication term is what separates them.
        let a = combined_cost(
            reference,
            reference,
            &comm.partition,
            scheduler.table(),
            alpha,
        );
        let b = combined_cost(
            reference,
            reference,
            &rand_place.partition,
            scheduler.table(),
            alpha,
        );
        println!("  {alpha:<5} {a:>10.4} {b:>10.4}");
    }
    println!("\nat alpha < 1 (communication matters) the aware placement wins;");
    println!("at alpha = 1 (pure compute) they tie — pick the strategy by the bottleneck.");
    Ok(())
}
