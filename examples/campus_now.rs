//! Campus NOW: four departments, four parallel applications.
//!
//! The scenario behind the paper's specially designed 24-switch network
//! (Figure 4): a campus network of four departmental rings joined by a few
//! backbone links. Four research groups each run a 24-process parallel
//! application. A communication-oblivious scheduler scatters each
//! application across departments and melts down the backbone; the
//! communication-aware scheduler recovers the physical rings and keeps all
//! traffic local.
//!
//! This example runs the *full pipeline including the flit-level
//! simulator* and prints the measured throughput of both placements.
//!
//! Run: `cargo run --release --example campus_now`

use commsched::core::Workload;
use commsched::netsim::{paper_sweep, sweep, SimConfig, SweepConfig};
use commsched::topology::designed;
use commsched::{RoutingKind, Scheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = designed::paper_24_switch();
    println!(
        "campus backbone: 4 rings x 6 switches, {} workstations",
        topology.num_hosts()
    );

    let scheduler = Scheduler::new(topology, RoutingKind::UpDown { root: 0 })?;
    let workload = Workload::balanced(scheduler.topology(), 4)?;

    let scheduled = scheduler.schedule(&workload, 1)?;
    let random = scheduler.random_mapping(&workload, 3)?;

    println!("\ncommunication-aware placement: {}", scheduled.partition);
    println!("  Cc = {:.3}", scheduled.quality.cc);
    println!("oblivious (random) placement:  {}", random.partition);
    println!("  Cc = {:.3}", random.quality.cc);

    // Simulate both at the same offered loads (9 points to 1.2x the
    // scheduled mapping's saturation).
    let sim = SimConfig {
        warmup_cycles: 1_500,
        measure_cycles: 6_000,
        ..Default::default()
    };
    let (op_sweep, sat) = paper_sweep(
        scheduler.topology(),
        scheduler.routing(),
        scheduled.mapping.host_clusters(),
        sim,
        SweepConfig::default(),
    )?;
    let rates: Vec<f64> = op_sweep.points.iter().map(|p| p.rate).collect();
    let random_sweep = sweep(
        scheduler.topology(),
        scheduler.routing(),
        random.mapping.host_clusters(),
        sim,
        &rates,
    )?;

    println!("\nsaturation of the scheduled mapping: {sat:.3} flits/host/cycle");
    println!(
        "measured throughput:  scheduled = {:.4}  random = {:.4}  (flits/switch/cycle)",
        op_sweep.throughput(),
        random_sweep.throughput()
    );
    println!(
        "the communication-aware schedule sustains {:.1}x the oblivious throughput",
        op_sweep.throughput() / random_sweep.throughput()
    );
    Ok(())
}
