//! Quickstart: schedule four parallel applications on a random NOW.
//!
//! Builds a random irregular 16-switch network (64 workstations, as in the
//! paper's experiments), computes the table of equivalent distances under
//! up*/down* routing, runs the tabu scheduler, and compares the resulting
//! mapping's clustering coefficient with a random placement.
//!
//! Run: `cargo run --release --example quickstart`

use commsched::core::Workload;
use commsched::topology::{random_regular, RandomTopologyConfig};
use commsched::{RoutingKind, Scheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 16 switches, 3 inter-switch links each, 4 workstations per switch.
    let mut rng = StdRng::seed_from_u64(2024);
    let topology = random_regular(RandomTopologyConfig::paper(16), &mut rng)?;
    println!(
        "network: {} switches, {} links, {} workstations",
        topology.num_switches(),
        topology.num_links(),
        topology.num_hosts()
    );

    // The scheduler builds routing + distance table once per topology.
    let scheduler = Scheduler::new(topology, RoutingKind::UpDown { root: 0 })?;

    // Four applications of 16 processes each (one process per processor).
    let workload = Workload::balanced(scheduler.topology(), 4)?;

    let scheduled = scheduler.schedule(&workload, 42)?;
    let random = scheduler.random_mapping(&workload, 7)?;

    println!("\nscheduled partition: {}", scheduled.partition);
    println!(
        "  F_G = {:.4}  D_G = {:.4}  Cc = {:.3}",
        scheduled.quality.fg, scheduled.quality.dg, scheduled.quality.cc
    );
    println!("\nrandom partition:    {}", random.partition);
    println!(
        "  F_G = {:.4}  D_G = {:.4}  Cc = {:.3}",
        random.quality.fg, random.quality.dg, random.quality.cc
    );

    let gain = scheduled.quality.cc / random.quality.cc;
    println!("\nclustering-coefficient gain over random: {gain:.2}x");
    assert!(scheduled.quality.fg <= random.quality.fg);
    Ok(())
}
