//! Closing the future-work loop: measure → estimate → reschedule.
//!
//! The paper's §6 lists two open problems: *measuring* the communication
//! requirements of running applications, and *integrating* the technique
//! with process scheduling. This example chains the library's answers to
//! both:
//!
//! 1. Four applications run on an unweighted tabu placement; application 0
//!    is secretly a bandwidth hog (8× the injection rate).
//! 2. The simulator's per-workstation injected-flit counters are read —
//!    exactly what a NIC would expose.
//! 3. `estimate_app_weights` turns them into per-application weights.
//! 4. The tabu search re-runs against the *weighted* criterion and the
//!    new placement is simulated again.
//!
//! The rescheduled placement gives the heavy application the
//! best-connected switches and lowers its latency.
//!
//! Run: `cargo run --release --example adaptive_rescheduling`

use commsched::core::{cluster_similarity, ProcessMapping, Workload};
use commsched::estimate::estimate_app_weights;
use commsched::netsim::{SimConfig, Simulator, TrafficPattern};
use commsched::topology::{random_regular, RandomTopologyConfig};
use commsched::{RoutingKind, Scheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn simulate_with_hog(
    sched: &Scheduler,
    mapping: &ProcessMapping,
    multipliers: &[f64],
) -> (commsched::netsim::SimStats, Vec<u64>, f64) {
    let pattern = TrafficPattern::new(mapping.host_clusters().to_vec())
        .with_rate_multipliers(multipliers.to_vec());
    let cfg = SimConfig {
        injection_rate: 0.06,
        warmup_cycles: 1_500,
        measure_cycles: 8_000,
        seed: 12,
        ..Default::default()
    };
    let mut sim =
        Simulator::new(sched.topology(), sched.routing(), pattern, cfg).expect("valid sim");
    let stats = sim.run();
    let injected = sim.host_injected_flits();
    // The hog's latency proxy: average hop cost of its cluster.
    let hog_cluster: Vec<usize> = mapping
        .partition()
        .clusters()
        .first()
        .cloned()
        .unwrap_or_default();
    let hog_cost = cluster_similarity(&hog_cluster, sched.table());
    (stats, injected, hog_cost)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(321);
    let topology = random_regular(RandomTopologyConfig::paper(16), &mut rng)?;
    let sched = Scheduler::new(topology, RoutingKind::UpDown { root: 0 })?;
    let workload = Workload::balanced(sched.topology(), 4)?;

    // Ground truth (unknown to the scheduler): app 0 injects 8x more.
    let true_multiplier = |app: usize| if app == 0 { 8.0 } else { 1.0 };

    // Round 1: the system before our scheduler kicks in — a
    // communication-oblivious (random) placement.
    let round1 = sched.random_mapping(&workload, 17)?;
    let mult1: Vec<f64> = round1
        .mapping
        .host_clusters()
        .iter()
        .map(|&app| true_multiplier(app))
        .collect();
    let (stats1, injected, hog_cost1) = simulate_with_hog(&sched, &round1.mapping, &mult1);
    println!("round 1 (oblivious):  {}", round1.partition);
    println!(
        "  accepted = {:.4} f/sw/cy, latency = {:.1} cy, hog-cluster cost = {hog_cost1:.2}",
        stats1.accepted_flits_per_switch_cycle, stats1.avg_network_latency
    );

    // Measure + estimate.
    let weights = estimate_app_weights(round1.mapping.host_clusters(), &injected)?;
    println!("\nestimated app weights from NIC counters: {weights:?}");
    assert!(weights[0] > 4.0, "the hog must stand out");

    // Round 2: weighted reschedule through the facade API.
    let round2 = sched.schedule_weighted(&workload, &weights, 18)?;
    let mult2: Vec<f64> = round2
        .mapping
        .host_clusters()
        .iter()
        .map(|&app| true_multiplier(app))
        .collect();
    let (stats2, _, hog_cost2) = simulate_with_hog(&sched, &round2.mapping, &mult2);
    println!("\nround 2 (weighted):   {}", round2.partition);
    println!(
        "  accepted = {:.4} f/sw/cy, latency = {:.1} cy, hog-cluster cost = {hog_cost2:.2}",
        stats2.accepted_flits_per_switch_cycle, stats2.avg_network_latency
    );

    println!(
        "\nhog-cluster intracluster cost: {hog_cost1:.2} -> {hog_cost2:.2} ({}).",
        if hog_cost2 <= hog_cost1 + 1e-9 {
            "improved or equal"
        } else {
            "regressed"
        }
    );
    assert!(hog_cost2 <= hog_cost1 + 1e-9);
    assert!(
        stats2.avg_network_latency <= stats1.avg_network_latency,
        "rescheduling must not worsen latency"
    );
    Ok(())
}
