//! Video-on-demand workload with unequal bandwidth demands.
//!
//! The paper's introduction motivates communication-aware scheduling with
//! "applications with huge network bandwidth requirements, like multimedia
//! applications, video-on-demand applications". This example uses the
//! library's future-work extension (per-application traffic weights) to
//! place one bandwidth-hungry VoD application and three light applications
//! on an irregular NOW.
//!
//! The weighted quality function shows why the VoD application should get
//! the best-connected region: the weighted `F_G` of a placement that puts
//! the heavy application on a spread-out cluster is much worse than one
//! that keeps it compact.
//!
//! Run: `cargo run --release --example video_on_demand`

use commsched::core::{weighted_similarity_fg, Workload};
use commsched::topology::{random_regular, RandomTopologyConfig};
use commsched::{RoutingKind, Scheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(555);
    let topology = random_regular(RandomTopologyConfig::paper(16), &mut rng)?;
    let scheduler = Scheduler::new(topology, RoutingKind::UpDown { root: 0 })?;
    let workload = Workload::balanced(scheduler.topology(), 4)?;

    // Application 0 is the VoD server farm: 10x the bandwidth demand.
    let weights = [10.0, 1.0, 1.0, 1.0];

    // Candidate placements: the tabu mapping and several random ones.
    let scheduled = scheduler.schedule(&workload, 9)?;
    println!("tabu placement: {}", scheduled.partition);
    let w_fg = weighted_similarity_fg(&scheduled.partition, scheduler.table(), &weights);
    println!(
        "  unweighted F_G = {:.4}, VoD-weighted F_G = {w_fg:.4}",
        scheduled.quality.fg
    );

    // Among label permutations of the same partition, pick the one that
    // gives the VoD application the tightest cluster: evaluate each cluster
    // as a candidate home for the heavy app.
    let clusters = scheduled.partition.clusters();
    println!("\nper-cluster intracluster cost (lower = better for the VoD app):");
    let mut costs: Vec<(usize, f64)> = clusters
        .iter()
        .enumerate()
        .map(|(c, members)| {
            (
                c,
                commsched::core::cluster_similarity(members, scheduler.table()),
            )
        })
        .collect();
    costs.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for &(c, cost) in &costs {
        println!("  cluster {c} {:?}: F_A = {cost:.3}", clusters[c]);
    }
    println!(
        "\n=> place the VoD application on cluster {} (tightest), latency-sensitive",
        costs[0].0
    );

    // Contrast with random placements under the weighted criterion.
    let mut best_random = f64::INFINITY;
    for seed in 0..5 {
        let r = scheduler.random_mapping(&workload, seed)?;
        let w = weighted_similarity_fg(&r.partition, scheduler.table(), &weights);
        best_random = best_random.min(w);
    }
    println!(
        "weighted F_G: tabu = {w_fg:.4}, best of 5 random = {best_random:.4} ({:.1}x worse)",
        best_random / w_fg
    );

    // Now search the *weighted* objective directly: the tabu search places
    // the heavy application on the best-connected switches by construction.
    use commsched::search::{TabuParams, TabuSearch};
    use rand::rngs::StdRng as Rng2;
    let mut rng = Rng2::seed_from_u64(9);
    let (weighted_res, _) = TabuSearch::new(TabuParams::scaled(16)).search_weighted(
        scheduler.table(),
        &workload.switch_demands(scheduler.topology().hosts_per_switch()),
        &weights,
        &mut rng,
    );
    println!(
        "\nweighted-objective tabu placement: {} (weighted F_G = {:.4})",
        weighted_res.partition, weighted_res.fg
    );
    let heavy_cost = commsched::core::cluster_similarity(
        &weighted_res.partition.clusters()[0],
        scheduler.table(),
    );
    println!("VoD cluster intracluster cost after weighted search: {heavy_cost:.3}");
    assert!(
        weighted_res.fg <= w_fg + 1e-9,
        "weighted search must not be worse"
    );
    Ok(())
}
