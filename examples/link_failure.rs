//! Rescheduling after a link failure.
//!
//! NOWs degrade: a cable gets unplugged, a switch port dies. Because the
//! equivalent-distance model is derived from the live topology and routing,
//! rescheduling after a failure is just "rebuild the table, search again".
//! This example breaks an intra-ring link of the campus network, rebuilds
//! the up*/down* routing and the distance table, and shows how the
//! scheduler's partition and the measured throughput respond.
//!
//! Run: `cargo run --release --example link_failure`

use commsched::core::Workload;
use commsched::netsim::{simulate, SimConfig};
use commsched::topology::designed;
use commsched::{RoutingKind, Scheduler};

fn throughput(sched: &Scheduler, clusters: &[usize], rate: f64) -> f64 {
    let cfg = SimConfig {
        injection_rate: rate,
        warmup_cycles: 1_500,
        measure_cycles: 6_000,
        ..Default::default()
    };
    simulate(sched.topology(), sched.routing(), clusters, cfg)
        .expect("simulation runs")
        .accepted_flits_per_switch_cycle
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let healthy = designed::paper_24_switch();
    let workload_clusters = 4;

    // Fail one link inside ring 0 (between switches 2 and 3).
    let failed_link = healthy.link_between(2, 3).expect("ring link exists");
    let degraded = healthy.without_link(failed_link)?;
    println!(
        "healthy: {} links; degraded: {} links (lost 2--3)",
        healthy.num_links(),
        degraded.num_links()
    );

    // Schedule on both networks (table rebuilt per network).
    let sched_h = Scheduler::new(healthy, RoutingKind::UpDown { root: 0 })?;
    let sched_d = Scheduler::new(degraded, RoutingKind::UpDown { root: 0 })?;
    let wl_h = Workload::balanced(sched_h.topology(), workload_clusters)?;
    let wl_d = Workload::balanced(sched_d.topology(), workload_clusters)?;

    let healthy_outcome = sched_h.schedule(&wl_h, 1)?;
    let degraded_outcome = sched_d.schedule(&wl_d, 1)?;
    // The stale plan: keep the healthy mapping while running degraded.
    let stale_clusters = healthy_outcome.mapping.host_clusters().to_vec();

    println!("\nhealthy mapping:   {}", healthy_outcome.partition);
    println!("  Cc = {:.3}", healthy_outcome.quality.cc);
    println!("re-scheduled:      {}", degraded_outcome.partition);
    println!("  Cc = {:.3}", degraded_outcome.quality.cc);

    let rate = 0.12;
    let before = throughput(&sched_h, &stale_clusters, rate);
    let stale = throughput(&sched_d, &stale_clusters, rate);
    let rescheduled = throughput(&sched_d, degraded_outcome.mapping.host_clusters(), rate);
    println!("\naccepted traffic at {rate} flits/host/cycle (flits/switch/cycle):");
    println!("  healthy network, healthy mapping:   {before:.4}");
    println!("  degraded network, stale mapping:    {stale:.4}");
    println!("  degraded network, re-scheduled:     {rescheduled:.4}");
    assert!(
        rescheduled >= stale * 0.98,
        "rescheduling must not lose throughput"
    );
    Ok(())
}
