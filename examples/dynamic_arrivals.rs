//! Online scheduling: applications arrive and depart over time.
//!
//! The paper's §6 leaves "the integration of the proposed scheduling
//! technique with process scheduling" to future work; `DynamicScheduler`
//! is that integration. This example plays an arrival/departure trace on
//! the campus network and prints each placement decision, the cost the
//! application gets, and machine utilization — showing how the
//! communication criterion keeps arriving applications on well-connected
//! switch groups without migrating running ones.
//!
//! Run: `cargo run --release --example dynamic_arrivals`

use commsched::topology::designed;
use commsched::{DynamicScheduler, RoutingKind, Scheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = designed::paper_24_switch();
    let scheduler = Scheduler::new(topology, RoutingKind::UpDown { root: 0 })?;
    let mut online = DynamicScheduler::new(scheduler);

    println!("event                      placement                cost   utilization");
    let mut ids = Vec::new();

    // Morning: three medium applications arrive.
    for name in ["render-farm", "cfd-solver", "db-analytics"] {
        let p = online.admit(name, 24)?;
        let cost = online.app_cost(p.id)?;
        println!(
            "+ {name:<22} {:<24} {cost:>6.1}   {:>4.0}%",
            format!("{:?}", p.switches),
            online.utilization() * 100.0
        );
        ids.push(p.id);
    }

    // A small interactive job squeezes into the remaining ring.
    let small = online.admit("notebook", 8)?;
    println!(
        "+ {:<22} {:<24} {:>6.1}   {:>4.0}%",
        "notebook",
        format!("{:?}", small.switches),
        online.app_cost(small.id)?,
        online.utilization() * 100.0
    );

    // Midday: the CFD solver finishes; a large ML job arrives and reuses
    // the freed switches.
    online.release(ids[1])?;
    println!(
        "- {:<22} {:<24} {:>6}   {:>4.0}%",
        "cfd-solver",
        "(released)",
        "",
        online.utilization() * 100.0
    );
    let ml = online.admit("ml-training", 24)?;
    println!(
        "+ {:<22} {:<24} {:>6.1}   {:>4.0}%",
        "ml-training",
        format!("{:?}", ml.switches),
        online.app_cost(ml.id)?,
        online.utilization() * 100.0
    );

    // An oversized request is rejected cleanly.
    match online.admit("too-big", 48) {
        Err(e) => println!("x {:<22} rejected: {e}", "too-big"),
        Ok(_) => unreachable!("capacity check must fire"),
    }

    println!("\nfinal placements:");
    for p in online.placements() {
        println!(
            "  {:<14} switches {:?} (cost {:.1})",
            p.name,
            p.switches,
            online.app_cost(p.id)?
        );
    }
    Ok(())
}
